package core

import (
	"testing"

	"repro/internal/heapsim"
	"repro/internal/synth"
)

// testScale keeps core tests fast; shape assertions are tolerant.
const testScale = 0.02

func buildArtifacts(t *testing.T, name string) *Artifacts {
	t.Helper()
	cfg := DefaultConfig(testScale)
	m := synth.ByName(name)
	if m == nil {
		t.Fatalf("unknown model %s", name)
	}
	a, err := cfg.Build(m)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestBuildArtifacts(t *testing.T) {
	a := buildArtifacts(t, "gawk")
	if len(a.TrainObjs) == 0 || len(a.TestObjs) == 0 {
		t.Fatal("empty annotations")
	}
	if a.TrainPredictor.NumSites() == 0 {
		t.Fatal("no predictor sites trained")
	}
}

func TestRunSimFirstFitAccounting(t *testing.T) {
	a := buildArtifacts(t, "perl")
	res, err := RunSim(a.TestTrace, heapsim.NewFirstFit(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalAllocs == 0 || res.MaxHeap == 0 {
		t.Fatalf("empty sim result: %+v", res)
	}
	if res.ArenaAllocPct != 0 {
		t.Fatal("first-fit reported arena allocations")
	}
	if res.Counts.FFAllocs != res.TotalAllocs {
		t.Fatalf("FFAllocs %d != allocs %d", res.Counts.FFAllocs, res.TotalAllocs)
	}
}

func TestRunSimArenaUsesPrediction(t *testing.T) {
	a := buildArtifacts(t, "gawk")
	res, err := RunSim(a.TestTrace, heapsim.NewArena(), a.TrainPredictor)
	if err != nil {
		t.Fatal(err)
	}
	// GAWK's true prediction is ~99%: the arena should absorb almost
	// everything.
	if res.ArenaAllocPct < 80 {
		t.Fatalf("gawk arena alloc %% = %.1f, want > 80", res.ArenaAllocPct)
	}
	// Without a predictor, nothing goes to arenas.
	res2, err := RunSim(a.TestTrace, heapsim.NewArena(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.ArenaAllocPct != 0 {
		t.Fatal("arena allocated without prediction")
	}
}

func TestTable2Shape(t *testing.T) {
	a := buildArtifacts(t, "cfrac")
	row, err := DefaultConfig(testScale).Table2(a)
	if err != nil {
		t.Fatal(err)
	}
	if row.Program != "cfrac" || row.TotalBytes == 0 || row.MaxBytes == 0 {
		t.Fatalf("bad row: %+v", row)
	}
	if row.HeapRefPct < 70 || row.HeapRefPct > 88 {
		t.Fatalf("cfrac heap refs %.1f, want ~79", row.HeapRefPct)
	}
}

func TestTable3Monotone(t *testing.T) {
	a := buildArtifacts(t, "espresso")
	row := DefaultConfig(testScale).Table3(a)
	for i := 1; i < 5; i++ {
		if row.Quartiles[i] < row.Quartiles[i-1] {
			t.Fatalf("quartiles not monotone: %v", row.Quartiles)
		}
	}
}

func TestTable4SelfBeatsTrueForPerl(t *testing.T) {
	a := buildArtifacts(t, "perl")
	row := DefaultConfig(testScale).Table4(a)
	if row.SelfErrorPct != 0 {
		t.Fatalf("self prediction error %.2f, must be 0 by construction", row.SelfErrorPct)
	}
	if row.TruePredPct >= row.SelfPredPct {
		t.Fatalf("perl true (%.1f) should be far below self (%.1f)",
			row.TruePredPct, row.SelfPredPct)
	}
	if row.TrueErrorPct <= 0 {
		t.Fatal("perl true prediction should show error bytes")
	}
}

func TestTable5SizeOnlyWeaker(t *testing.T) {
	a := buildArtifacts(t, "ghost")
	cfg := DefaultConfig(testScale)
	t4 := cfg.Table4(a)
	t5 := cfg.Table5(a)
	if t5.PredPct >= t4.SelfPredPct {
		t.Fatalf("size-only (%.1f) should predict less than site+size (%.1f)",
			t5.PredPct, t4.SelfPredPct)
	}
}

func TestTable6LadderMonotoneUpToComplete(t *testing.T) {
	a := buildArtifacts(t, "ghost")
	row := DefaultConfig(testScale).Table6(a)
	for i := 1; i < 7; i++ {
		if row.PredPct[i]+1e-9 < row.PredPct[i-1] {
			t.Fatalf("sub-chain ladder decreased at %d: %v", i, row.PredPct)
		}
	}
	if row.PredPct[3] < row.PredPct[2]+10 {
		t.Fatalf("ghost should jump at length 4: %v", row.PredPct)
	}
}

func TestTable6RecursionMergeEspresso(t *testing.T) {
	a := buildArtifacts(t, "espresso")
	row := DefaultConfig(testScale).Table6(a)
	// The complete chain (index 7) predicts less than length-7 (index 6)
	// because recursion elimination merges a short site into a long one.
	if row.PredPct[7] >= row.PredPct[6] {
		t.Fatalf("espresso complete chain (%.1f) should be below length-7 (%.1f)",
			row.PredPct[7], row.PredPct[6])
	}
}

func TestTable7GhostBytesBelowAllocs(t *testing.T) {
	a := buildArtifacts(t, "ghost")
	row, err := DefaultConfig(testScale).Table7(a)
	if err != nil {
		t.Fatal(err)
	}
	// GHOST's 6KB objects cannot enter 4KB arenas: the byte fraction
	// sits far below the object fraction.
	if row.ArenaBytePct >= row.ArenaAllocPct-20 {
		t.Fatalf("ghost arena bytes %.1f vs allocs %.1f: 6KB objects not excluded",
			row.ArenaBytePct, row.ArenaAllocPct)
	}
}

func TestTable7CfracPollution(t *testing.T) {
	a := buildArtifacts(t, "cfrac")
	row, err := DefaultConfig(testScale).Table7(a)
	if err != nil {
		t.Fatal(err)
	}
	// Despite 47% predicted, pollution collapses arena usage.
	if row.ArenaAllocPct > 25 {
		t.Fatalf("cfrac arena allocs %.1f%%, want collapse toward the paper's 2.6%%",
			row.ArenaAllocPct)
	}
}

func TestTable8SmallHeapsPayForArenas(t *testing.T) {
	a := buildArtifacts(t, "gawk")
	row, err := DefaultConfig(testScale).Table8(a)
	if err != nil {
		t.Fatal(err)
	}
	// GAWK's heap is tiny: the 64KB arena area must make the arena
	// allocator's footprint larger than first-fit's.
	if row.TrueRatioPct <= 100 {
		t.Fatalf("gawk arena/first-fit = %.1f%%, want > 100%%", row.TrueRatioPct)
	}
	if row.TrueArenaKB < 64 {
		t.Fatalf("arena heap %dKB below the arena area itself", row.TrueArenaKB)
	}
}

func TestTable9ShapeGawk(t *testing.T) {
	a := buildArtifacts(t, "gawk")
	row, err := DefaultConfig(testScale).Table9(a)
	if err != nil {
		t.Fatal(err)
	}
	// GAWK is the success story: arena len-4 must beat both baselines.
	if row.Len4.Total() >= row.FirstFit.Total() {
		t.Fatalf("gawk len4 total %.1f not below first-fit %.1f",
			row.Len4.Total(), row.FirstFit.Total())
	}
	if row.Len4.Total() >= row.BSD.Total() {
		t.Fatalf("gawk len4 total %.1f not below BSD %.1f",
			row.Len4.Total(), row.BSD.Total())
	}
	// CCE alloc cost is never below len-4 minus the chain cost.
	if row.CCE.Alloc < row.Len4.Alloc-10 {
		t.Fatalf("cce alloc %.1f implausibly below len4 %.1f", row.CCE.Alloc, row.Len4.Alloc)
	}
}

func TestTable9CfracExpensive(t *testing.T) {
	a := buildArtifacts(t, "cfrac")
	row, err := DefaultConfig(testScale).Table9(a)
	if err != nil {
		t.Fatal(err)
	}
	// Pollution makes the arena allocator worse than plain first-fit.
	if row.Len4.Total() <= row.FirstFit.Total() {
		t.Fatalf("cfrac len4 total %.1f should exceed first-fit %.1f",
			row.Len4.Total(), row.FirstFit.Total())
	}
}

func TestLocalityArenaShrinksFootprint(t *testing.T) {
	// The paper's locality claim: short-lived objects end up "in a small
	// part of the heap". GHOST has the heap far larger than any cache;
	// the arena allocator must touch fewer distinct pages. The effect
	// needs a heap well above the 64KB arena area, hence the larger
	// scale here.
	cfg := DefaultConfig(0.1)
	a, err := cfg.Build(synth.ByName("ghost"))
	if err != nil {
		t.Fatal(err)
	}
	row, err := cfg.Locality(a)
	if err != nil {
		t.Fatal(err)
	}
	if row.ArenaPages >= row.FirstFitPages {
		t.Fatalf("arena touched %d pages, first-fit %d: footprint did not shrink",
			row.ArenaPages, row.FirstFitPages)
	}
	if row.ArenaMissPct <= 0 || row.FirstFitMissPct <= 0 {
		t.Fatal("cache replay produced no misses at all")
	}
}

func TestPaperDataComplete(t *testing.T) {
	for _, p := range ProgramOrder {
		if _, ok := PaperTable2[p]; !ok {
			t.Errorf("PaperTable2 missing %s", p)
		}
		if _, ok := PaperTable4[p]; !ok {
			t.Errorf("PaperTable4 missing %s", p)
		}
		if _, ok := PaperTable9[p]; !ok {
			t.Errorf("PaperTable9 missing %s", p)
		}
	}
	if len(ProgramOrder) != 5 {
		t.Fatal("program order must list the paper's five programs")
	}
}

func TestRunSimStreamMatchesMaterialized(t *testing.T) {
	m := synth.ByName("perl")
	gcfg := synth.Config{Input: synth.Test, Seed: 77, Scale: 0.01}
	tr, err := m.Generate(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(0.01)
	a, err := cfg.Build(m)
	if err != nil {
		t.Fatal(err)
	}
	// Same generation config must yield identical simulation results
	// whether streamed or materialized.
	want, err := RunSim(tr, heapsim.NewFirstFit(), a.TrainPredictor)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunSimStream(m, gcfg, heapsim.NewFirstFit(), a.TrainPredictor)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalAllocs != want.TotalAllocs || got.TotalBytes != want.TotalBytes ||
		got.MaxHeap != want.MaxHeap || got.Counts != want.Counts {
		t.Fatalf("stream/materialized mismatch:\n got %+v\nwant %+v", got, want)
	}
}
