package core

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestChromeTraceExport(t *testing.T) {
	res := &RunResult{Timings: []CellTiming{
		{Program: "gawk", Cell: "build", Start: 0, Dur: 10 * time.Millisecond},
		{Program: "cfrac", Cell: "build", Start: 2 * time.Millisecond, Dur: 10 * time.Millisecond},
		{Program: "gawk", Cell: "2", Start: 10 * time.Millisecond, Dur: 5 * time.Millisecond},
	}}
	evs := res.TraceEvents()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	byName := map[string]TraceEvent{}
	for _, e := range evs {
		byName[e.Name] = e
		if e.Ph != "X" {
			t.Errorf("%s: ph = %q, want complete-event X", e.Name, e.Ph)
		}
		if e.Pid != 1 {
			t.Errorf("%s: pid = %d, want 1", e.Name, e.Pid)
		}
	}
	if byName["gawk/build"].Cat != "build" || byName["cfrac/build"].Cat != "build" {
		t.Error("build cells not categorized as build")
	}
	if byName["gawk/2"].Cat != "cell" {
		t.Errorf("gawk/2 cat = %q, want cell", byName["gawk/2"].Cat)
	}
	// Lanes: gawk/build takes lane 1; cfrac/build overlaps it and spills to
	// lane 2; gawk/2 starts exactly when gawk/build ends and reuses lane 1.
	if got := byName["gawk/build"].Tid; got != 1 {
		t.Errorf("gawk/build tid = %d, want 1", got)
	}
	if got := byName["cfrac/build"].Tid; got != 2 {
		t.Errorf("cfrac/build tid = %d, want 2", got)
	}
	if got := byName["gawk/2"].Tid; got != 1 {
		t.Errorf("gawk/2 tid = %d, want lane 1 reused", got)
	}
	// The invariant behind the lane assignment: no two events on the same
	// tid overlap in time.
	lanes := map[int][]TraceEvent{}
	for _, e := range evs {
		for _, prev := range lanes[e.Tid] {
			if e.Ts < prev.Ts+prev.Dur && prev.Ts < e.Ts+e.Dur {
				t.Errorf("tid %d: %s overlaps %s", e.Tid, e.Name, prev.Name)
			}
		}
		lanes[e.Tid] = append(lanes[e.Tid], e)
	}

	var buf bytes.Buffer
	if err := res.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents     []json.RawMessage `json:"traceEvents"`
		DisplayTimeUnit string            `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON does not parse: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 3 || doc.DisplayTimeUnit != "ms" {
		t.Errorf("trace doc = %d events, unit %q", len(doc.TraceEvents), doc.DisplayTimeUnit)
	}
}

func TestEngineTimingsCarryStart(t *testing.T) {
	eng := NewEngine(DefaultConfig(0.002))
	res, err := eng.Run(Spec{
		Tables:   map[string]bool{"2": true},
		Programs: []string{"gawk"},
		Workers:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timings) == 0 {
		t.Fatal("engine produced no timings")
	}
	evs := res.TraceEvents()
	if len(evs) != len(res.Timings) {
		t.Fatalf("%d trace events from %d timings", len(evs), len(res.Timings))
	}
	// With one worker the schedule is serial: every event fits in lane 1
	// and starts no earlier than the previous one.
	for i, e := range evs {
		if e.Tid != 1 {
			t.Errorf("event %d (%s): tid = %d, want 1 with a single worker", i, e.Name, e.Tid)
		}
		if i > 0 && e.Ts < evs[i-1].Ts {
			t.Errorf("event %d starts before its predecessor", i)
		}
	}
}
