package core

import (
	"fmt"
)

// This file defines the experiment cells the Engine schedules: one cell
// per (program, table/ablation) pair, each rendering its measured row(s)
// next to the paper's published values. The formatting used to live in
// cmd/lptables; it moved here so the CLI, the golden-file tests, and the
// root benchmarks share one code path (and one byte-exact output).

// TableFlags are the -tables keys lptables accepts, in render order.
// "L" is the locality extension, "A" the ablation/extension suite.
var TableFlags = []string{"1", "2", "3", "4", "5", "6", "7", "8", "9", "L", "A"}

// tableDef describes one rendered output table.
type tableDef struct {
	id      string // internal id ("t6r" and "ta1".."ta8" have no flag of their own)
	flag    string // the -tables key that prints it
	cell    string // the cell that computes its rows
	title   string
	headers []string
}

// tableDefs lists every output table in render order. Each table's rows
// are produced by exactly one cell per program.
var tableDefs = []tableDef{
	{"t1", "1", "1", "Table 1: the test programs (model descriptions)",
		[]string{"Program", "Source lines", "Description"}},
	{"t2", "2", "2", "Table 2: allocation behaviour",
		[]string{"Program", "Bytes(M)", "Objects(M)", "MaxKB", "MaxObjs", "HeapRef%"}},
	{"t3", "3", "3", "Table 3: object lifetime quartiles (bytes, byte-weighted)",
		[]string{"Program", "min", "25%", "50%", "75%", "max"}},
	{"t4", "4", "4", "Table 4: prediction from allocation site and size",
		[]string{"Program", "Sites", "Actual%", "SelfUsed", "Self%", "SelfErr%", "TrueUsed", "True%", "TrueErr%"}},
	{"t5", "5", "5", "Table 5: prediction from size only (self)",
		[]string{"Program", "Actual%", "Pred%", "SizesUsed"}},
	{"t6", "6", "6", "Table 6: call-chain length vs predicted short-lived % (self)",
		[]string{"Program", "len1", "len2", "len3", "len4", "len5", "len6", "len7", "complete"}},
	{"t6r", "6", "6", "Table 6 (New Ref %): heap references to predicted-short objects",
		[]string{"Program", "len1", "len2", "len3", "len4", "len5", "len6", "len7", "complete"}},
	{"t7", "7", "7", "Table 7: arena occupancy under true prediction (16 x 4KB arenas)",
		[]string{"Program", "Allocs(K)", "Arena%", "NonArena%", "Bytes(KB)", "ArenaB%", "NonArenaB%"}},
	{"t8", "8", "8", "Table 8: maximum heap sizes (KB)",
		[]string{"Program", "FirstFit", "SelfArena", "Self/FF%", "TrueArena", "True/FF%"}},
	{"t9", "9", "9", "Table 9: instructions per operation (true prediction)",
		[]string{"Program", "BSD a", "BSD f", "FF a", "FF f", "Len4 a", "Len4 f", "CCE a", "CCE f"}},
	{"tl", "L", "L", "Locality extension: 256KB 4-way cache, 256KB LRU resident set",
		[]string{"Program", "FF miss%", "Arena miss%", "FF fault%", "Arena fault%", "FF pages", "Arena pages"}},
	{"ta1", "A", "A1", "Ablation: short-lived threshold (self prediction)",
		[]string{"Program", "8KB", "16KB", "32KB", "64KB", "128KB"}},
	{"ta2", "A", "A2", "Ablation: admission fraction (self% / true-error%)",
		[]string{"Program", "1.00", "0.99", "0.95", "0.90"}},
	{"ta3", "A", "A3", "Ablation: arena geometry at 64KB total (arena-alloc% / pinned)",
		[]string{"Program", "1x64KB", "4x16KB", "16x4KB", "64x1KB"}},
	{"ta4", "A", "A4", "Ablation: free-list policy (max heap KB / probes per alloc)",
		[]string{"Program", "next-fit (A4')", "rover-on-free (K&R)", "best-fit"}},
	{"ta5", "A", "A5", "Extension: call-chain-encryption predictor quality (self)",
		[]string{"Program", "exact%", "cce%", "collisions", "exact sites", "cce sites"}},
	{"ta6", "A", "A6", "Extension: generational GC pretenuring (copied KB)",
		[]string{"Program", "baseline", "pretenured", "pretenured objs"}},
	{"ta7", "A", "A7", "Extension: CUSTOMALLOC-style top-16-size allocator vs arena (max heap KB)",
		[]string{"Program", "fast-path%", "custom", "arena", "first-fit"}},
	{"ta8", "A", "A8", "Extension: per-site arena pools vs shared arenas (true prediction)",
		[]string{"Program", "shared alloc%", "per-site alloc%", "shared KB", "per-site KB", "pinned pools"}},
}

// rowSink receives one formatted row for one output table.
type rowSink func(tableID string, cells ...string)

// cellDef is one schedulable unit of per-program work: it runs once the
// program's Artifacts exist and renders its row(s) through the sink.
type cellDef struct {
	name string // "1".."9", "L", "A1".."A8"
	flag string // the -tables key that enables it
	run  func(c Config, a *Artifacts, add rowSink) error
}

// measured-vs-paper formatting helpers (the parenthesized value is the
// paper's published number).
func fmtPct(measured, paper float64) string {
	return fmt.Sprintf("%.1f (%.1f)", measured, paper)
}

func fmtCnt(measured, paper int) string {
	return fmt.Sprintf("%d (%d)", measured, paper)
}

func fmtKB(measured, paper int64) string {
	return fmt.Sprintf("%d (%d)", measured, paper)
}

// cellDefs lists every cell in deterministic schedule order (the order
// rows were computed in the original serial loop).
var cellDefs = []cellDef{
	{"1", "1", func(c Config, a *Artifacts, add rowSink) error {
		m := a.Model
		add("t1", m.Name, fmt.Sprintf("%d", m.SourceLines), m.Description)
		return nil
	}},
	{"2", "2", func(c Config, a *Artifacts, add rowSink) error {
		row, err := c.Table2(a)
		if err != nil {
			return err
		}
		p2 := PaperTable2[a.Model.Name]
		add("t2", a.Model.Name,
			fmt.Sprintf("%.1f (%.1f)", float64(row.TotalBytes)/1e6, p2.TotalBytesM*c.Scale),
			fmt.Sprintf("%.2f (%.2f)", float64(row.TotalObjects)/1e6, p2.TotalObjectsM*c.Scale),
			fmtKB(row.MaxBytes>>10, p2.MaxKB),
			fmtKB(row.MaxObjects, p2.MaxObjects),
			fmtPct(row.HeapRefPct, p2.HeapRefsPct))
		return nil
	}},
	{"3", "3", func(c Config, a *Artifacts, add rowSink) error {
		row := c.Table3(a)
		p3 := PaperTable3[a.Model.Name]
		cells := []string{a.Model.Name}
		for i := 0; i < 5; i++ {
			cells = append(cells, fmt.Sprintf("%.0f (%.0f)", row.Quartiles[i], p3[i]))
		}
		add("t3", cells...)
		return nil
	}},
	{"4", "4", func(c Config, a *Artifacts, add rowSink) error {
		row := c.Table4(a)
		p4 := PaperTable4[a.Model.Name]
		add("t4", a.Model.Name,
			fmtCnt(row.TotalSites, p4.TotalSites),
			fmtPct(row.ActualShortPct, p4.ActualShortPct),
			fmtCnt(row.SelfSitesUsed, p4.SelfSitesUsed),
			fmtPct(row.SelfPredPct, p4.SelfPredPct),
			fmtPct(row.SelfErrorPct, p4.SelfErrorPct),
			fmtCnt(row.TrueSitesUsed, p4.TrueSitesUsed),
			fmtPct(row.TruePredPct, p4.TruePredPct),
			fmtPct(row.TrueErrorPct, p4.TrueErrorPct))
		return nil
	}},
	{"5", "5", func(c Config, a *Artifacts, add rowSink) error {
		row := c.Table5(a)
		p5 := PaperTable5[a.Model.Name]
		add("t5", a.Model.Name,
			fmtPct(row.ActualShortPct, p5.ActualShortPct),
			fmtPct(row.PredPct, p5.PredPct),
			fmtCnt(row.SitesUsed, p5.SitesUsed))
		return nil
	}},
	{"6", "6", func(c Config, a *Artifacts, add rowSink) error {
		row := c.Table6(a)
		p6 := PaperTable6[a.Model.Name]
		cells := []string{a.Model.Name}
		refs := []string{a.Model.Name}
		for i := 0; i < 8; i++ {
			cells = append(cells, fmt.Sprintf("%.0f (%.0f)", row.PredPct[i], p6.PredPct[i]))
			refs = append(refs, fmt.Sprintf("%.0f (%.0f)", row.NewRef[i], p6.NewRef[i]))
		}
		add("t6", cells...)
		add("t6r", refs...)
		return nil
	}},
	{"7", "7", func(c Config, a *Artifacts, add rowSink) error {
		row, err := c.Table7(a)
		if err != nil {
			return err
		}
		p7 := PaperTable7[a.Model.Name]
		add("t7", a.Model.Name,
			fmt.Sprintf("%.1f (%.1f)", float64(row.TotalAllocs)/1e3, p7.TotalAllocsK*c.Scale),
			fmtPct(row.ArenaAllocPct, p7.ArenaAllocPct),
			fmtPct(100-row.ArenaAllocPct, 100-p7.ArenaAllocPct),
			fmt.Sprintf("%d (%.0f)", row.TotalBytes>>10, float64(p7.TotalKB)*c.Scale),
			fmtPct(row.ArenaBytePct, p7.ArenaBytePct),
			fmtPct(100-row.ArenaBytePct, 100-p7.ArenaBytePct))
		return nil
	}},
	{"8", "8", func(c Config, a *Artifacts, add rowSink) error {
		row, err := c.Table8(a)
		if err != nil {
			return err
		}
		p8 := PaperTable8[a.Model.Name]
		add("t8", a.Model.Name,
			fmtKB(row.FirstFitKB, p8.FirstFitKB),
			fmtKB(row.SelfArenaKB, p8.SelfArenaKB),
			fmtPct(row.SelfRatioPct, p8.SelfRatioPct),
			fmtKB(row.TrueArenaKB, p8.TrueArenaKB),
			fmtPct(row.TrueRatioPct, p8.TrueRatioPct))
		return nil
	}},
	{"9", "9", func(c Config, a *Artifacts, add rowSink) error {
		row, err := c.Table9(a)
		if err != nil {
			return err
		}
		p9 := PaperTable9[a.Model.Name]
		add("t9", a.Model.Name,
			fmtPct(row.BSD.Alloc, p9.BSDAlloc), fmtPct(row.BSD.Free, p9.BSDFree),
			fmtPct(row.FirstFit.Alloc, p9.FFAlloc), fmtPct(row.FirstFit.Free, p9.FFFree),
			fmtPct(row.Len4.Alloc, p9.Len4Alloc), fmtPct(row.Len4.Free, p9.Len4Free),
			fmtPct(row.CCE.Alloc, p9.CCEAlloc), fmtPct(row.CCE.Free, p9.CCEFree))
		return nil
	}},
	{"L", "L", func(c Config, a *Artifacts, add rowSink) error {
		row, err := c.Locality(a)
		if err != nil {
			return err
		}
		add("tl", a.Model.Name,
			fmt.Sprintf("%.2f", row.FirstFitMissPct),
			fmt.Sprintf("%.2f", row.ArenaMissPct),
			fmt.Sprintf("%.3f", row.FirstFitFaultPct),
			fmt.Sprintf("%.3f", row.ArenaFaultPct),
			fmt.Sprintf("%d", row.FirstFitPages),
			fmt.Sprintf("%d", row.ArenaPages))
		return nil
	}},
	{"A1", "A", func(c Config, a *Artifacts, add rowSink) error {
		th := c.ThresholdSweep(a, []int64{8, 16, 32, 64, 128})
		cells := []string{a.Model.Name}
		for _, r := range th {
			cells = append(cells, fmt.Sprintf("%.1f", r.PredPct))
		}
		add("ta1", cells...)
		return nil
	}},
	{"A2", "A", func(c Config, a *Artifacts, add rowSink) error {
		ad := c.AdmitSweep(a, []float64{1.0, 0.99, 0.95, 0.90})
		cells := []string{a.Model.Name}
		for _, r := range ad {
			cells = append(cells, fmt.Sprintf("%.1f/%.2f", r.SelfPredPct, r.TrueErrorPct))
		}
		add("ta2", cells...)
		return nil
	}},
	{"A3", "A", func(c Config, a *Artifacts, add rowSink) error {
		geo, err := c.ArenaGeometrySweep(a, [][2]int{{1, 64}, {4, 16}, {16, 4}, {64, 1}})
		if err != nil {
			return err
		}
		cells := []string{a.Model.Name}
		for _, r := range geo {
			cells = append(cells, fmt.Sprintf("%.1f/%d", r.ArenaAllocPct, r.PinnedArenas))
		}
		add("ta3", cells...)
		return nil
	}},
	{"A4", "A", func(c Config, a *Artifacts, add rowSink) error {
		fit, err := c.FitPolicySweep(a)
		if err != nil {
			return err
		}
		cells := []string{a.Model.Name}
		for _, r := range fit {
			cells = append(cells, fmt.Sprintf("%d/%.1f", r.MaxHeapKB, r.ProbesPerOp))
		}
		add("ta4", cells...)
		return nil
	}},
	{"A5", "A", func(c Config, a *Artifacts, add rowSink) error {
		cq := c.CCEQuality(a)
		add("ta5", a.Model.Name,
			fmt.Sprintf("%.1f", cq.ExactPredPct),
			fmt.Sprintf("%.1f", cq.CCEPredPct),
			fmt.Sprintf("%d", cq.KeyCollisions),
			fmt.Sprintf("%d", cq.ExactSites),
			fmt.Sprintf("%d", cq.CCESites))
		return nil
	}},
	{"A6", "A", func(c Config, a *Artifacts, add rowSink) error {
		gc, err := c.GCPretenuring(a)
		if err != nil {
			return err
		}
		add("ta6", a.Model.Name,
			fmt.Sprintf("%d", gc.BaseCopiedKB),
			fmt.Sprintf("%d", gc.PreCopiedKB),
			fmt.Sprintf("%d", gc.Pretenured))
		return nil
	}},
	{"A7", "A", func(c Config, a *Artifacts, add rowSink) error {
		cu, err := c.CustomAllocComparison(a)
		if err != nil {
			return err
		}
		add("ta7", a.Model.Name,
			fmt.Sprintf("%.1f", cu.CustomFastPct),
			fmt.Sprintf("%d", cu.CustomHeapKB),
			fmt.Sprintf("%d", cu.ArenaHeapKB),
			fmt.Sprintf("%d", cu.FirstFitHeapKB))
		return nil
	}},
	{"A8", "A", func(c Config, a *Artifacts, add rowSink) error {
		sa, err := c.SiteArenaComparison(a)
		if err != nil {
			return err
		}
		add("ta8", a.Model.Name,
			fmt.Sprintf("%.1f", sa.SharedAllocPct),
			fmt.Sprintf("%.1f", sa.SitedAllocPct),
			fmt.Sprintf("%d", sa.SharedHeapKB),
			fmt.Sprintf("%d", sa.SitedHeapKB),
			fmt.Sprintf("%d", sa.PinnedPools))
		return nil
	}},
}
