package core

import (
	"repro/internal/callchain"
	"repro/internal/heapsim"
	"repro/internal/obs"
	"repro/internal/trace"
)

// ReplayTracker is the exported face of the replay-side observability
// state RunSimOracle keeps per run (obsTracker): the byte clock, the live
// set that scores alloc-time predictions at free time, timeline samples,
// phase marks, and the per-site rankings. Replay loops built outside this
// package — the cluster simulator steps one tracker per tenant — drive it
// with exactly the calls RunSimOracle would make, so a tenant's snapshot
// is field-for-field the snapshot a solo replay would have produced.
//
// A nil *ReplayTracker is valid and inert, mirroring the nil-collector
// fast path of the replay loops.
type ReplayTracker struct {
	t *obsTracker
}

// NewReplayTracker prepares a tracker on the given collector, attaching
// it to the allocator when the allocator is Observable. nEvents drives
// the 25/50/75% phase marks (pass 0 when unknown); shortThreshold is the
// byte-lifetime boundary predictions are scored against, normally the
// driving oracle's ShortThreshold. A nil collector returns a nil tracker.
func NewReplayTracker(col *obs.Collector, alloc heapsim.Allocator, nEvents int, shortThreshold int64) *ReplayTracker {
	if col == nil {
		return nil
	}
	return &ReplayTracker{t: newObsTracker(col, alloc, nEvents, shortThreshold)}
}

// Step observes one replayed event after the allocator accepted it.
// predictedShort is the oracle's verdict for an alloc event and ignored
// for frees. Stepping a free of an object the tracker never saw is a
// counted no-op — the cluster relies on this for frees of rejected
// objects and for the real free arriving after an eviction.
func (rt *ReplayTracker) Step(ev trace.Event, predictedShort bool) {
	if rt == nil {
		return
	}
	rt.t.step(ev, predictedShort)
}

// Clock returns the tracker's byte clock: cumulative bytes of stepped
// allocs. In a solo replay this is the trace's own byte time; in the
// cluster it is the tenant's admitted-byte time.
func (rt *ReplayTracker) Clock() int64 {
	if rt == nil {
		return 0
	}
	return rt.t.clock
}

// Finish scores still-live objects, takes the end-of-run sample and phase
// mark, ranks the site tables, and freezes the snapshot — nil for a nil
// tracker.
func (rt *ReplayTracker) Finish(program string, tb *callchain.Table) *obs.Snapshot {
	if rt == nil {
		return nil
	}
	return rt.t.finish(program, tb)
}
