// Package core glues the substrates into the paper's experimental
// pipeline: generate (or load) an allocation trace, train a lifetime
// predictor on a training input, and evaluate prediction effectiveness and
// allocator performance on a test input. One Experiment method per paper
// table returns structured rows; cmd/lptables and the root benchmarks
// render them next to the paper's published values.
//
// Input conventions (paper §3.1 measures "the largest of the input sets"
// and §4 distinguishes self from true prediction):
//
//   - Self prediction: train and evaluate on the Train input.
//   - True prediction: train on Train, evaluate on Test (a different
//     input, or for PERL a different program).
//   - Simulations (Tables 7-9) use true prediction on the Test input, as
//     the paper does; Table 8's self-prediction column simulates the
//     Train input with its own predictor.
package core

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/callchain"
	"repro/internal/costmodel"
	"repro/internal/heapsim"
	"repro/internal/locality"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/synth"
	"repro/internal/trace"
)

// Config parameterizes an experiment run.
type Config struct {
	// Scale multiplies each model's paper-scale trace volume. 1.0
	// reproduces the full runs; smaller values keep tests fast.
	Scale float64
	// SeedBase derives all generation seeds.
	SeedBase uint64
	// Profile is the predictor configuration (32KB threshold etc.).
	Profile profile.Config
	// Models defaults to synth.All().
	Models []*synth.Model
}

// DefaultConfig returns the paper-faithful configuration at the given
// scale.
func DefaultConfig(scale float64) Config {
	return Config{
		Scale:    scale,
		SeedBase: 1993, // PLDI '93
		Profile:  profile.DefaultConfig(),
		Models:   synth.All(),
	}
}

// genConfig is the single source of truth for how experiment inputs map
// to generator configs: the Train input uses SeedBase, the Test input
// SeedBase+1000. Build and the streaming MatrixRunner both derive their
// sources from it, which is what keeps their results byte-identical.
func (c Config) genConfig(in synth.Input) synth.Config {
	seed := c.SeedBase
	if in == synth.Test {
		seed += 1000
	}
	return synth.Config{Input: in, Seed: seed, Scale: c.Scale}
}

// GenConfig exposes genConfig so out-of-package replay drivers (the
// cluster simulator, load harnesses) derive their generator configs from
// the same seed rule instead of duplicating it.
func (c Config) GenConfig(in synth.Input) synth.Config { return c.genConfig(in) }

// Artifacts bundles everything derived from one model at one scale; the
// experiments share it so traces are generated and annotated once.
type Artifacts struct {
	Model *synth.Model

	TrainTrace *trace.Trace
	TestTrace  *trace.Trace
	TrainObjs  []trace.Object
	TestObjs   []trace.Object

	// TrainPredictor is trained on the Train input (used for true
	// prediction and the simulations).
	TrainPredictor *profile.Predictor
	// TrainDB is the full site database behind TrainPredictor.
	TrainDB *profile.DB
}

// Build generates and annotates both inputs of a model and trains the
// predictor.
func (c Config) Build(m *synth.Model) (*Artifacts, error) {
	a := &Artifacts{Model: m}
	var err error
	a.TrainTrace, err = m.Generate(c.genConfig(synth.Train))
	if err != nil {
		return nil, fmt.Errorf("core: generating %s train input: %w", m.Name, err)
	}
	a.TestTrace, err = m.Generate(c.genConfig(synth.Test))
	if err != nil {
		return nil, fmt.Errorf("core: generating %s test input: %w", m.Name, err)
	}
	a.TrainObjs, err = trace.Annotate(a.TrainTrace)
	if err != nil {
		return nil, fmt.Errorf("core: annotating %s train trace: %w", m.Name, err)
	}
	a.TestObjs, err = trace.Annotate(a.TestTrace)
	if err != nil {
		return nil, fmt.Errorf("core: annotating %s test trace: %w", m.Name, err)
	}
	a.TrainDB = profile.TrainObjects(a.TrainTrace.Table, a.TrainObjs, c.Profile)
	a.TrainPredictor = a.TrainDB.Predictor()
	return a, nil
}

// SimResult summarizes one allocator simulation over one trace.
type SimResult struct {
	Allocator   string
	MaxHeap     int64
	Counts      heapsim.OpCounts
	TotalAllocs int64
	TotalBytes  int64
	// Arena occupancy fractions (Table 7), zero for non-arena runs.
	ArenaAllocPct float64
	ArenaBytePct  float64
	PinnedArenas  int
	// Obs is the observability snapshot (metrics, timeline, events,
	// per-phase counters) when a collector was attached; nil otherwise.
	// Every other field is byte-identical with and without a collector.
	Obs *obs.Snapshot
}

// pickCollector resolves the optional trailing collector argument the
// replay functions accept.
func pickCollector(observers []*obs.Collector) *obs.Collector {
	for _, c := range observers {
		if c != nil {
			return c
		}
	}
	return nil
}

// finishSim fills a replay's aggregate fields from the allocator's final
// state (shared by the nil-collector and observed paths, so both produce
// identical values).
func finishSim(res *SimResult, alloc heapsim.Allocator) {
	res.MaxHeap = alloc.MaxHeapSize()
	res.Counts = alloc.Counts()
	if res.TotalAllocs > 0 {
		res.ArenaAllocPct = 100 * float64(res.Counts.ArenaAllocs) / float64(res.TotalAllocs)
	}
	if res.TotalBytes > 0 {
		res.ArenaBytePct = 100 * float64(res.Counts.ArenaBytes) / float64(res.TotalBytes)
	}
	if ar, ok := alloc.(interface{ PinnedArenas() int }); ok {
		res.PinnedArenas = ar.PinnedArenas()
	}
}

// FinishSim exposes finishSim for replay loops built outside this package
// on the same SimResult vocabulary — the cluster simulator fills
// per-tenant results from a shared pool allocator through it.
func FinishSim(res *SimResult, alloc heapsim.Allocator) { finishSim(res, alloc) }

// allocatorName labels the built-in simulators for snapshots. Composed
// allocators (heapsim.Pool) carry their own label via the AllocatorName
// hook, which wins over the type switch.
func allocatorName(alloc heapsim.Allocator) string {
	if n, ok := alloc.(interface{ AllocatorName() string }); ok {
		return n.AllocatorName()
	}
	switch alloc.(type) {
	case *heapsim.FirstFit:
		return "firstfit"
	case *heapsim.BestFit:
		return "bestfit"
	case *heapsim.BSD:
		return "bsd"
	case *heapsim.Arena:
		return "arena"
	case *heapsim.SiteArena:
		return "sitearena"
	case *heapsim.Custom:
		return "custom"
	case *heapsim.SegFit:
		return "segfit"
	}
	return ""
}

// occupancyReporter is implemented by arena-style allocators that can
// report their arena-area occupancy for timeline samples.
type occupancyReporter interface {
	ArenaOccupancy() float64
}

// maxObsSites bounds the per-site ranking attached to a snapshot.
const maxObsSites = 50

// predLifetimeBuckets sizes the log2 actual-lifetime histograms: lifetimes
// are measured in bytes allocated, so 40 buckets cover runs up to a
// terabyte of allocation before the overflow bucket engages.
const predLifetimeBuckets = 40

// obsTracker carries the replay-side observability state: the
// bytes-allocated clock, the live set (for live-bytes timelines and for
// scoring each alloc-time prediction against the actual lifetime observed
// at free time), phase boundaries, and the per-site rankings. It exists
// only when a collector is attached, so the nil-collector replay path pays
// a single pointer compare per event.
type obsTracker struct {
	col   *obs.Collector
	alloc heapsim.Allocator
	occ   occupancyReporter // nil for non-arena allocators

	clock       int64
	liveBytes   int64
	liveObjects int64
	live        map[trace.ObjectID]liveObj

	siteAllocs map[callchain.ChainID]*siteAgg
	predSites  map[callchain.ChainID]*predSiteAgg

	// Confusion-matrix counter handles, resolved once so every cell —
	// including zero ones — appears in snapshots and bench baselines.
	// "Positive" means predicted short-lived.
	thr                    int64 // short-lifetime threshold (bytes)
	tpObj, fpObj           *obs.Counter
	fnObj, tnObj           *obs.Counter
	tpBytes, fpBytes       *obs.Counter
	fnBytes, tnBytes       *obs.Counter
	fpCost                 *obs.Counter
	lifeShort, lifeLong    *obs.Histogram
	decidedObjs, rightObjs int64 // rolling accuracy for timeline samples
	decidedBytes           int64
	rightBytes             int64

	// scan is the opt-in heap-topology scanner (Options.HeapScan); nil
	// when the collector did not request it or the allocator exposes no
	// Walker. Scans run only on timeline samples, never per event.
	scan *heapScanner

	nEvents int // 0 when unknown (streaming)
	seen    int
}

// liveObj is what the tracker remembers about a live object between its
// alloc and its free: enough to compute the actual lifetime and attribute
// the prediction back to its site.
type liveObj struct {
	size  int64
	born  int64 // clock before the object's own allocation (trace.Object.Birth)
	chain callchain.ChainID
	short bool // predicted short-lived at alloc time
}

type siteAgg struct {
	allocs int64
	bytes  int64
}

// predSiteAgg accumulates one site's mispredictions: false positives
// (predicted short, lived long) with their byte-lifetime cost, and false
// negatives (predicted long, died short).
type predSiteAgg struct {
	fpObjects, fpBytes, fpCost int64
	fnObjects, fnBytes         int64
}

// newObsTracker attaches the collector to the allocator (when it is
// Observable) and prepares the replay-side state. thr is the short-lifetime
// threshold the replay's predictions are scored against.
func newObsTracker(col *obs.Collector, alloc heapsim.Allocator, nEvents int, thr int64) *obsTracker {
	if o, ok := alloc.(heapsim.Observable); ok {
		o.Observe(col)
	}
	t := &obsTracker{
		col:        col,
		alloc:      alloc,
		live:       make(map[trace.ObjectID]liveObj),
		siteAllocs: make(map[callchain.ChainID]*siteAgg),
		predSites:  make(map[callchain.ChainID]*predSiteAgg),
		nEvents:    nEvents,
		thr:        thr,
		tpObj:      col.Counter("pred.tp_objects"),
		fpObj:      col.Counter("pred.fp_objects"),
		fnObj:      col.Counter("pred.fn_objects"),
		tnObj:      col.Counter("pred.tn_objects"),
		tpBytes:    col.Counter("pred.tp_bytes"),
		fpBytes:    col.Counter("pred.fp_bytes"),
		fnBytes:    col.Counter("pred.fn_bytes"),
		tnBytes:    col.Counter("pred.tn_bytes"),
		fpCost:     col.Counter("pred.fp_cost_bytelife"),
		lifeShort:  col.Log2Histogram("pred.lifetime_pred_short", predLifetimeBuckets),
		lifeLong:   col.Log2Histogram("pred.lifetime_pred_long", predLifetimeBuckets),
	}
	col.Gauge("pred.threshold_bytes").Set(thr)
	if occ, ok := alloc.(occupancyReporter); ok {
		t.occ = occ
	}
	if col.HeapScanEnabled() {
		if w, ok := alloc.(heapsim.Walker); ok {
			t.scan = newHeapScanner(col, w)
		}
	}
	return t
}

// step observes one replayed event (after the allocator accepted it).
// short is the prediction the replay loop made for an alloc event; it is
// ignored for frees.
func (t *obsTracker) step(ev trace.Event, short bool) {
	switch ev.Kind {
	case trace.KindAlloc:
		born := t.clock
		t.clock += ev.Size
		t.liveBytes += ev.Size
		t.liveObjects++
		t.live[ev.Obj] = liveObj{size: ev.Size, born: born, chain: ev.Chain, short: short}
		ag := t.siteAllocs[ev.Chain]
		if ag == nil {
			ag = &siteAgg{}
			t.siteAllocs[ev.Chain] = ag
		}
		ag.allocs++
		ag.bytes += ev.Size
		t.col.SetClock(t.clock)
		if t.col.TimelineDue(t.clock) {
			t.sample()
		}
	case trace.KindFree:
		if lo, ok := t.live[ev.Obj]; ok {
			t.liveBytes -= lo.size
			t.liveObjects--
			delete(t.live, ev.Obj)
			t.score(lo, t.clock-lo.born)
		}
	}
	t.seen++
	if t.nEvents >= 4 {
		switch t.seen {
		case t.nEvents / 4:
			t.col.MarkPhase("25%")
		case t.nEvents / 2:
			t.col.MarkPhase("50%")
		case t.nEvents * 3 / 4:
			t.col.MarkPhase("75%")
		}
	}
}

// score resolves one object's alloc-time prediction against its actual
// lifetime (bytes allocated between birth and death, matching
// trace.Annotate), updating the confusion matrix, the lifetime histograms
// split by predicted class, the per-site misprediction attribution, and
// the rolling-accuracy channel.
func (t *obsTracker) score(lo liveObj, lifetime int64) {
	actualShort := lifetime < t.thr
	correct := lo.short == actualShort
	switch {
	case lo.short && actualShort:
		t.tpObj.Add(1)
		t.tpBytes.Add(lo.size)
	case lo.short && !actualShort:
		t.fpObj.Add(1)
		t.fpBytes.Add(lo.size)
		cost := lo.size * (lifetime - t.thr)
		t.fpCost.Add(cost)
		ps := t.predSite(lo.chain)
		ps.fpObjects++
		ps.fpBytes += lo.size
		ps.fpCost += cost
	case !lo.short && actualShort:
		t.fnObj.Add(1)
		t.fnBytes.Add(lo.size)
		ps := t.predSite(lo.chain)
		ps.fnObjects++
		ps.fnBytes += lo.size
	default:
		t.tnObj.Add(1)
		t.tnBytes.Add(lo.size)
	}
	if lo.short {
		t.lifeShort.Observe(lifetime)
	} else {
		t.lifeLong.Observe(lifetime)
	}
	t.decidedObjs++
	t.decidedBytes += lo.size
	if correct {
		t.rightObjs++
		t.rightBytes += lo.size
	}
}

func (t *obsTracker) predSite(chain callchain.ChainID) *predSiteAgg {
	ps := t.predSites[chain]
	if ps == nil {
		ps = &predSiteAgg{}
		t.predSites[chain] = ps
	}
	return ps
}

// sample records one timeline point from the current replay state.
func (t *obsTracker) sample() {
	s := obs.Sample{
		Clock:              t.clock,
		LiveBytes:          t.liveBytes,
		LiveObjects:        t.liveObjects,
		HeapBytes:          t.alloc.HeapSize(),
		PredDecidedObjects: t.decidedObjs,
		PredCorrectObjects: t.rightObjs,
		PredDecidedBytes:   t.decidedBytes,
		PredCorrectBytes:   t.rightBytes,
	}
	if t.occ != nil {
		s.ArenaOccupancy = t.occ.ArenaOccupancy()
	}
	if t.scan != nil {
		st := t.scan.scan(t.clock)
		s.HeapLivePayload = st.livePayload
		s.HeapHeaderBytes = st.header
		s.HeapInternalFrag = st.internal
		s.HeapExternalFrag = st.external
		s.HeapHoleBytes = st.holes
		s.HeapFreeSpans = st.freeSpans
		s.HeapLargestFreeSpan = st.largestFree
	}
	t.col.RecordSample(s)
}

// finish scores the never-freed objects (their lifetime extends to the end
// of the run, matching trace.Annotate), takes the end-of-run sample and
// phase mark, ranks the site tables, and freezes the snapshot. The chain
// table renders site labels.
func (t *obsTracker) finish(program string, tb *callchain.Table) *obs.Snapshot {
	// Draining the live map in arbitrary order is fine: every scoring
	// update is a commutative accumulation (counter adds, histogram
	// observations, per-site sums), so the result is order-independent.
	for _, lo := range t.live {
		t.score(lo, t.clock-lo.born)
	}
	t.live = make(map[trace.ObjectID]liveObj)
	t.sample()
	t.col.MarkPhase("end")

	chains := make([]callchain.ChainID, 0, len(t.siteAllocs))
	for id := range t.siteAllocs {
		chains = append(chains, id)
	}
	sort.Slice(chains, func(i, j int) bool {
		a, b := t.siteAllocs[chains[i]], t.siteAllocs[chains[j]]
		if a.bytes != b.bytes {
			return a.bytes > b.bytes
		}
		return chains[i] < chains[j]
	})
	if len(chains) > maxObsSites {
		chains = chains[:maxObsSites]
	}
	sites := make([]obs.SiteBytes, 0, len(chains))
	for _, id := range chains {
		ag := t.siteAllocs[id]
		sites = append(sites, obs.SiteBytes{Site: tb.String(id), Allocs: ag.allocs, Bytes: ag.bytes})
	}
	t.col.SetSites(sites)
	t.col.SetPredSites(t.rankPredSites(tb))

	snap := t.col.Snapshot()
	snap.Program = program
	snap.Allocator = allocatorName(t.alloc)
	return snap
}

// rankPredSites orders misprediction sites by false-positive cost (the
// fragmentation failure mode), then false-positive bytes, then
// false-negative bytes, chain id as the deterministic tie-break, capped at
// maxObsSites like the allocation ranking.
func (t *obsTracker) rankPredSites(tb *callchain.Table) []obs.PredSite {
	chains := make([]callchain.ChainID, 0, len(t.predSites))
	for id := range t.predSites {
		chains = append(chains, id)
	}
	sort.Slice(chains, func(i, j int) bool {
		a, b := t.predSites[chains[i]], t.predSites[chains[j]]
		if a.fpCost != b.fpCost {
			return a.fpCost > b.fpCost
		}
		if a.fpBytes != b.fpBytes {
			return a.fpBytes > b.fpBytes
		}
		if a.fnBytes != b.fnBytes {
			return a.fnBytes > b.fnBytes
		}
		return chains[i] < chains[j]
	})
	if len(chains) > maxObsSites {
		chains = chains[:maxObsSites]
	}
	out := make([]obs.PredSite, 0, len(chains))
	for _, id := range chains {
		ps := t.predSites[id]
		out = append(out, obs.PredSite{
			Site:      tb.String(id),
			FPObjects: ps.fpObjects,
			FPBytes:   ps.fpBytes,
			FPCost:    ps.fpCost,
			FNObjects: ps.fnObjects,
			FNBytes:   ps.fnBytes,
		})
	}
	return out
}

// RunSim replays a trace through an allocator. When pred is non-nil its
// site database drives the predictedShort hint (chains are mapped by name,
// so cross-input true prediction works transparently). An optional
// trailing obs.Collector records metrics, a timeline, and structured
// events; with no (or a nil) collector the replay and its SimResult are
// identical to the uninstrumented behaviour.
func RunSim(tr *trace.Trace, alloc heapsim.Allocator, pred *profile.Predictor, observers ...*obs.Collector) (SimResult, error) {
	return RunSimSource(trace.NewSliceSource(tr), alloc, pred, observers...)
}

// RunSimSource replays a streaming event source through an allocator —
// the engine behind RunSim and RunSimStream. Memory stays bounded by the
// source's own state (for generated or file-backed sources, the live
// object set), never the event count. The SimResult is identical to
// replaying the materialized trace: same events, same table, same
// predictor decisions. When a collector is attached and the source
// implements trace.Counted, the observability snapshot also carries the
// 25/50/75% phase marks; otherwise only the end phase is marked.
func RunSimSource(src trace.Source, alloc heapsim.Allocator, pred *profile.Predictor, observers ...*obs.Collector) (SimResult, error) {
	var oracle profile.Oracle
	if pred != nil {
		oracle = pred.NewMapper(src.Table())
	}
	return RunSimOracle(src, alloc, oracle, observers...)
}

// RunSimOracle is RunSimSource generalized over the prediction policy: any
// profile.Oracle — the paper's mapped site database, a zoo policy bound
// via profile.BindOracle, or nil for no prediction — supplies the
// per-allocation short/long hint and the threshold its accuracy is scored
// against. The oracle must already speak the source's chain table.
func RunSimOracle(src trace.Source, alloc heapsim.Allocator, oracle profile.Oracle, observers ...*obs.Collector) (SimResult, error) {
	ot := trackerFor(src, alloc, oracle, observers)
	res := SimResult{}
	// The replay runs on the block path: block-native sources (binary
	// readers, synth generators, column views) hand over DefaultBlockLen
	// events per NextBlock call, scalar sources go through the adapter,
	// and the inner loop walks the columns with plain index arithmetic —
	// no interface dispatch, no 40-byte struct copies per event. Event
	// indices in errors stay global (base counts completed blocks), and
	// the tracker still steps per event, so phase marks, timeline
	// cadence, and prediction scoring land on exactly the same events as
	// the scalar reference replay.
	bs := trace.AsBlockSource(src)
	blk := trace.NewEventBlock(trace.DefaultBlockLen)
	for base := 0; ; base += blk.N {
		err := bs.NextBlock(blk)
		if err == io.EOF {
			break
		}
		if err != nil {
			return res, err
		}
		n := blk.N
		kinds, objs, sizes, chains := blk.Kinds[:n], blk.Objs[:n], blk.Sizes[:n], blk.Chains[:n]
		for k := 0; k < n; k++ {
			switch kinds[k] {
			case trace.KindAlloc:
				short := false
				if oracle != nil {
					// The loop's own decision is reused for quality
					// tracking; asking the oracle twice would double a
					// mapper's site-usage accounting.
					short = oracle.PredictShort(chains[k], sizes[k])
				}
				if err := alloc.Alloc(objs[k], sizes[k], short); err != nil {
					return res, fmt.Errorf("core: event %d: %w", base+k, err)
				}
				res.TotalAllocs++
				res.TotalBytes += sizes[k]
				if ot != nil {
					ot.step(blk.Event(k), short)
				}
			case trace.KindFree:
				if err := alloc.Free(objs[k]); err != nil {
					return res, fmt.Errorf("core: event %d: %w", base+k, err)
				}
				if ot != nil {
					ot.step(blk.Event(k), false)
				}
			default:
				return res, fmt.Errorf("core: event %d: bad kind %d", base+k, kinds[k])
			}
		}
	}
	finishSim(&res, alloc)
	if ot != nil {
		res.Obs = ot.finish(src.Meta().Program, src.Table())
	}
	return res, nil
}

// trackerFor builds the replay's obsTracker when a collector is attached,
// resolving the event count (for phase marks) and the short threshold the
// predictions are scored against. Shared by the block and scalar replays.
func trackerFor(src trace.Source, alloc heapsim.Allocator, oracle profile.Oracle, observers []*obs.Collector) *obsTracker {
	col := pickCollector(observers)
	if col == nil {
		return nil
	}
	n := 0
	if c, ok := src.(trace.Counted); ok {
		if cnt, known := c.EventCount(); known {
			n = cnt
		}
	}
	thr := profile.DefaultConfig().ShortThreshold
	if oracle != nil {
		thr = oracle.ShortThreshold()
	}
	return newObsTracker(col, alloc, n, thr)
}

// RunSimSourceScalar is the one-event-at-a-time reference replay — the
// exact loop RunSimSource ran before the columnar refactor. It is kept
// (and exercised by the conformance harness) as the oracle the block
// path is differentially tested against: for any source, both replays
// must produce byte-identical SimResults and snapshots.
func RunSimSourceScalar(src trace.Source, alloc heapsim.Allocator, pred *profile.Predictor, observers ...*obs.Collector) (SimResult, error) {
	var oracle profile.Oracle
	if pred != nil {
		oracle = pred.NewMapper(src.Table())
	}
	return RunSimOracleScalar(src, alloc, oracle, observers...)
}

// RunSimOracleScalar is the scalar reference replay generalized over the
// prediction policy, mirroring RunSimOracle exactly as RunSimSourceScalar
// mirrors RunSimSource.
func RunSimOracleScalar(src trace.Source, alloc heapsim.Allocator, oracle profile.Oracle, observers ...*obs.Collector) (SimResult, error) {
	ot := trackerFor(src, alloc, oracle, observers)
	res := SimResult{}
	for i := 0; ; i++ {
		ev, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return res, err
		}
		short := false
		switch ev.Kind {
		case trace.KindAlloc:
			if oracle != nil {
				short = oracle.PredictShort(ev.Chain, ev.Size)
			}
			if err := alloc.Alloc(ev.Obj, ev.Size, short); err != nil {
				return res, fmt.Errorf("core: event %d: %w", i, err)
			}
			res.TotalAllocs++
			res.TotalBytes += ev.Size
		case trace.KindFree:
			if err := alloc.Free(ev.Obj); err != nil {
				return res, fmt.Errorf("core: event %d: %w", i, err)
			}
		default:
			return res, fmt.Errorf("core: event %d: bad kind %d", i, ev.Kind)
		}
		if ot != nil {
			ot.step(ev, short)
		}
	}
	finishSim(&res, alloc)
	if ot != nil {
		res.Obs = ot.finish(src.Meta().Program, src.Table())
	}
	return res, nil
}

// --- Table 2: allocation behaviour ---

// Table2Row reports the Table 2 metrics for one program.
type Table2Row struct {
	Program      string
	SourceLines  int
	TotalBytes   int64
	TotalObjects int64
	MaxBytes     int64
	MaxObjects   int64
	HeapRefPct   float64
}

// Table2 computes per-program allocation statistics on the Train input.
func (c Config) Table2(a *Artifacts) (Table2Row, error) {
	st, err := trace.ComputeStats(a.TrainTrace)
	if err != nil {
		return Table2Row{}, err
	}
	return Table2Row{
		Program:      a.Model.Name,
		SourceLines:  a.Model.SourceLines,
		TotalBytes:   st.TotalBytes,
		TotalObjects: st.TotalObjects,
		MaxBytes:     st.MaxBytes,
		MaxObjects:   st.MaxObjects,
		HeapRefPct:   100 * st.HeapRefFrac,
	}, nil
}

// --- Table 3: lifetime quantiles ---

// Table3Row holds the byte-weighted lifetime quartiles of one program.
type Table3Row struct {
	Program   string
	Quartiles [5]float64 // 0, 25, 50, 75, 100%
}

// Table3 computes the byte-weighted lifetime quartiles on the Train input.
func (c Config) Table3(a *Artifacts) Table3Row {
	q := profile.LifetimeQuantiles(a.TrainObjs, []float64{0, 0.25, 0.5, 0.75, 1}, true)
	var row Table3Row
	row.Program = a.Model.Name
	copy(row.Quartiles[:], q)
	return row
}

// --- Table 4: self and true prediction ---

// Table4Row reports prediction effectiveness for one program.
type Table4Row struct {
	Program        string
	TotalSites     int
	ActualShortPct float64
	SelfSitesUsed  int
	SelfPredPct    float64
	SelfErrorPct   float64
	TrueSitesUsed  int
	TruePredPct    float64
	TrueErrorPct   float64
}

// Table4 evaluates the site+size predictor under self and true prediction.
func (c Config) Table4(a *Artifacts) Table4Row {
	self := profile.EvaluateObjects(a.TrainTrace.Table, a.TrainObjs, a.TrainPredictor)
	tru := profile.EvaluateObjects(a.TestTrace.Table, a.TestObjs, a.TrainPredictor)
	return Table4Row{
		Program:        a.Model.Name,
		TotalSites:     self.TotalSites,
		ActualShortPct: self.ActualShortPct(),
		SelfSitesUsed:  self.SitesUsed,
		SelfPredPct:    self.PredictedShortPct(),
		SelfErrorPct:   self.ErrorPct(),
		TrueSitesUsed:  tru.SitesUsed,
		TruePredPct:    tru.PredictedShortPct(),
		TrueErrorPct:   tru.ErrorPct(),
	}
}

// --- Table 5: size-only prediction ---

// Table5Row reports size-only prediction effectiveness (self prediction).
type Table5Row struct {
	Program        string
	ActualShortPct float64
	PredPct        float64
	SitesUsed      int
}

// Table5 evaluates a predictor keyed by rounded size alone.
func (c Config) Table5(a *Artifacts) Table5Row {
	cfg := c.Profile
	cfg.SizeOnly = true
	db := profile.TrainObjects(a.TrainTrace.Table, a.TrainObjs, cfg)
	ev := profile.EvaluateObjects(a.TrainTrace.Table, a.TrainObjs, db.Predictor())
	return Table5Row{
		Program:        a.Model.Name,
		ActualShortPct: ev.ActualShortPct(),
		PredPct:        ev.PredictedShortPct(),
		SitesUsed:      ev.SitesUsed,
	}
}

// --- Table 6: call-chain length ---

// Table6Row reports, for one program, predicted-short % and New Ref % for
// sub-chain lengths 1..7 and the complete chain (index 7).
type Table6Row struct {
	Program string
	PredPct [8]float64
	NewRef  [8]float64
}

// Table6 sweeps the call-chain length (self prediction).
func (c Config) Table6(a *Artifacts) Table6Row {
	row := Table6Row{Program: a.Model.Name}
	for i := 0; i < 8; i++ {
		cfg := c.Profile
		if i < 7 {
			cfg.ChainLength = i + 1
		} else {
			cfg.ChainLength = 0 // complete chain
		}
		db := profile.TrainObjects(a.TrainTrace.Table, a.TrainObjs, cfg)
		ev := profile.EvaluateObjects(a.TrainTrace.Table, a.TrainObjs, db.Predictor())
		row.PredPct[i] = ev.PredictedShortPct()
		row.NewRef[i] = ev.NewRefPct()
	}
	return row
}

// --- Table 7: arena occupancy under true prediction ---

// Table7Row reports the fraction of objects and bytes placed in arenas.
type Table7Row struct {
	Program       string
	TotalAllocs   int64
	ArenaAllocPct float64
	ArenaBytePct  float64
	TotalBytes    int64
	PinnedArenas  int
}

// Table7 simulates the arena allocator on the Test input with true
// prediction (the paper's configuration: 16 x 4KB arenas).
func (c Config) Table7(a *Artifacts) (Table7Row, error) {
	res, err := RunSim(a.TestTrace, heapsim.NewArena(), a.TrainPredictor)
	if err != nil {
		return Table7Row{}, err
	}
	return Table7Row{
		Program:       a.Model.Name,
		TotalAllocs:   res.TotalAllocs,
		ArenaAllocPct: res.ArenaAllocPct,
		ArenaBytePct:  res.ArenaBytePct,
		TotalBytes:    res.TotalBytes,
		PinnedArenas:  res.PinnedArenas,
	}, nil
}

// --- Table 8: maximum heap sizes ---

// Table8Row compares first-fit and arena heap sizes (KB).
type Table8Row struct {
	Program      string
	FirstFitKB   int64
	SelfArenaKB  int64
	SelfRatioPct float64 // arena/first-fit * 100
	TrueArenaKB  int64
	TrueRatioPct float64
}

// Table8 measures maximum heap sizes on the Test input (the measured
// run): first-fit, the arena allocator under self prediction (a predictor
// trained on the Test input itself), and under true prediction (the Train
// predictor).
func (c Config) Table8(a *Artifacts) (Table8Row, error) {
	ffRes, err := RunSim(a.TestTrace, heapsim.NewFirstFit(), nil)
	if err != nil {
		return Table8Row{}, err
	}
	selfDB := profile.TrainObjects(a.TestTrace.Table, a.TestObjs, c.Profile)
	selfRes, err := RunSim(a.TestTrace, heapsim.NewArena(), selfDB.Predictor())
	if err != nil {
		return Table8Row{}, err
	}
	trueRes, err := RunSim(a.TestTrace, heapsim.NewArena(), a.TrainPredictor)
	if err != nil {
		return Table8Row{}, err
	}
	row := Table8Row{
		Program:     a.Model.Name,
		FirstFitKB:  ffRes.MaxHeap >> 10,
		SelfArenaKB: selfRes.MaxHeap >> 10,
		TrueArenaKB: trueRes.MaxHeap >> 10,
	}
	if row.FirstFitKB > 0 {
		row.SelfRatioPct = 100 * float64(row.SelfArenaKB) / float64(row.FirstFitKB)
		row.TrueRatioPct = 100 * float64(row.TrueArenaKB) / float64(row.FirstFitKB)
	}
	return row, nil
}

// --- Table 9: instructions per operation ---

// Table9Row reports modeled instructions per alloc/free for the four
// allocators (true prediction for the arena columns).
type Table9Row struct {
	Program  string
	BSD      costmodel.PerOp
	FirstFit costmodel.PerOp
	Len4     costmodel.PerOp
	CCE      costmodel.PerOp
}

// Table9 simulates BSD, first-fit, and the arena allocator on the Test
// input and prices them with the instruction cost model.
func (c Config) Table9(a *Artifacts) (Table9Row, error) {
	params := costmodel.DefaultParams()
	bsdRes, err := RunSim(a.TestTrace, heapsim.NewBSD(), nil)
	if err != nil {
		return Table9Row{}, err
	}
	ffRes, err := RunSim(a.TestTrace, heapsim.NewFirstFit(), nil)
	if err != nil {
		return Table9Row{}, err
	}
	arRes, err := RunSim(a.TestTrace, heapsim.NewArena(), a.TrainPredictor)
	if err != nil {
		return Table9Row{}, err
	}
	return Table9Row{
		Program:  a.Model.Name,
		BSD:      costmodel.BSD(bsdRes.Counts, params),
		FirstFit: costmodel.FirstFit(ffRes.Counts, params),
		Len4:     costmodel.ArenaLen4(arRes.Counts, params),
		CCE:      costmodel.ArenaCCE(arRes.Counts, params, a.Model.CallsPerAlloc),
	}, nil
}

// --- Locality extension ---

// LocalityRow quantifies the paper's reference-locality claim with a cache
// simulation: the same reference load replayed against first-fit and
// arena placements.
type LocalityRow struct {
	Program         string
	FirstFitMissPct float64
	ArenaMissPct    float64
	FirstFitPages   int
	ArenaPages      int
	// Page-fault rates under a 64-frame (256KB) LRU resident set — the
	// "page miss rates" half of the paper's locality claim.
	FirstFitFaultPct float64
	ArenaFaultPct    float64
}

// localityWindow is how many consecutively-allocated objects have their
// references interleaved, and refsCap bounds per-object replay work.
const (
	localityWindow  = 64
	localityRefsCap = 96
)

// Locality replays the Test input's references through a 256KB 4-way
// cache under both allocators. The cache is sized above the 64KB arena
// area and below the programs' first-fit heap extents, which is where the
// paper's locality argument bites: short-lived churn that cycles through a
// resident 64KB window hits, churn that next-fit walks across a
// multi-megabyte heap does not.
func (c Config) Locality(a *Artifacts) (LocalityRow, error) {
	row := LocalityRow{Program: a.Model.Name}
	miss, fault, pages, err := replayLocality(a.TestTrace, heapsim.NewFirstFit(), nil)
	if err != nil {
		return row, err
	}
	row.FirstFitMissPct, row.FirstFitFaultPct, row.FirstFitPages = miss, fault, pages
	miss, fault, pages, err = replayLocality(a.TestTrace, heapsim.NewArena(), a.TrainPredictor)
	if err != nil {
		return row, err
	}
	row.ArenaMissPct, row.ArenaFaultPct, row.ArenaPages = miss, fault, pages
	return row, nil
}

func replayLocality(tr *trace.Trace, alloc heapsim.Allocator, pred *profile.Predictor) (missPct, faultPct float64, pages int, err error) {
	cache, err := locality.NewCache(256<<10, 4, 32)
	if err != nil {
		return 0, 0, 0, err
	}
	pager, err := locality.NewPageLRU(64, 4<<10)
	if err != nil {
		return 0, 0, 0, err
	}
	var mapper *profile.Mapper
	if pred != nil {
		mapper = pred.NewMapper(tr.Table)
	}
	var window []locality.Ref
	var allRefs []locality.Ref
	flush := func() {
		locality.Replay(cache, window, localityRefsCap)
		locality.ReplayPaged(pager, window, localityRefsCap)
		window = window[:0]
	}
	for i, ev := range tr.Events {
		switch ev.Kind {
		case trace.KindAlloc:
			short := false
			if mapper != nil {
				short = mapper.PredictShort(ev.Chain, ev.Size)
			}
			if err := alloc.Alloc(ev.Obj, ev.Size, short); err != nil {
				return 0, 0, 0, fmt.Errorf("locality replay: event %d: %w", i, err)
			}
			addr, ok := alloc.Addr(ev.Obj)
			if !ok {
				return 0, 0, 0, fmt.Errorf("locality replay: object %d has no address", ev.Obj)
			}
			ref := locality.Ref{Addr: addr, Size: ev.Size, Refs: ev.Refs}
			window = append(window, ref)
			allRefs = append(allRefs, ref)
			if len(window) >= localityWindow {
				flush()
			}
		case trace.KindFree:
			if err := alloc.Free(ev.Obj); err != nil {
				return 0, 0, 0, fmt.Errorf("locality replay: event %d: %w", i, err)
			}
		}
	}
	flush()
	return 100 * cache.MissRate(), 100 * pager.FaultRate(),
		locality.WorkingSet(allRefs, 4<<10), nil
}

// InternTables reports the chain tables in play; exposed for tools that
// need to render chains.
func (a *Artifacts) InternTables() (train, test *callchain.Table) {
	return a.TrainTrace.Table, a.TestTrace.Table
}

// RunSimStream replays a workload model's events through an allocator
// without materializing the trace: memory stays proportional to the live
// object set, so paper-scale (and larger) simulations run in a few
// megabytes. The predictor, when non-nil, is consulted against the chains
// interned on the fly. An optional trailing obs.Collector records metrics
// as in RunSim; attaching one adds a deterministic counting dry run so the
// snapshot carries the same 25/50/75% phase marks as the materialized
// path — with no collector there is no pre-pass and generation stays
// single-shot.
func RunSimStream(m *synth.Model, gcfg synth.Config, alloc heapsim.Allocator, pred *profile.Predictor, observers ...*obs.Collector) (SimResult, error) {
	src, err := m.Source(gcfg)
	if err != nil {
		return SimResult{}, err
	}
	if pickCollector(observers) != nil {
		n, err := m.CountEvents(gcfg)
		if err != nil {
			return SimResult{}, err
		}
		src.SetCount(n)
	}
	return RunSimSource(src, alloc, pred, observers...)
}

// RunSimSited replays a trace through the per-site arena allocator
// (heapsim.SiteArena), routing each predicted-short allocation to its own
// site's pool. This is the pollution-isolation variant explored under the
// paper's "further exploration of algorithms" future work; see
// EXPERIMENTS.md. An optional trailing obs.Collector records metrics as
// in RunSim.
func RunSimSited(tr *trace.Trace, alloc *heapsim.SiteArena, pred *profile.Predictor, observers ...*obs.Collector) (SimResult, error) {
	mapper := pred.NewMapper(tr.Table)
	var ot *obsTracker
	if col := pickCollector(observers); col != nil {
		ot = newObsTracker(col, alloc, len(tr.Events), mapper.ShortThreshold())
	}
	res := SimResult{}
	for i, ev := range tr.Events {
		short := false
		switch ev.Kind {
		case trace.KindAlloc:
			var key profile.SiteKey
			key, short = mapper.Site(ev.Chain, ev.Size)
			var err error
			if short {
				// Fold the site key into a stable, well-mixed 64-bit
				// pool identity (a plain shift-xor would be congruent
				// to the size modulo the bucket count).
				id := (uint64(key.Chain)+1)*0x9e3779b97f4a7c15 ^
					uint64(key.Size)*0xc2b2ae3d27d4eb4f
				err = alloc.AllocAt(ev.Obj, ev.Size, id)
			} else {
				err = alloc.Alloc(ev.Obj, ev.Size, false)
			}
			if err != nil {
				return res, fmt.Errorf("core: event %d: %w", i, err)
			}
			res.TotalAllocs++
			res.TotalBytes += ev.Size
		case trace.KindFree:
			if err := alloc.Free(ev.Obj); err != nil {
				return res, fmt.Errorf("core: event %d: %w", i, err)
			}
		default:
			return res, fmt.Errorf("core: event %d: bad kind %d", i, ev.Kind)
		}
		if ot != nil {
			ot.step(ev, short)
		}
	}
	finishSim(&res, alloc)
	res.PinnedArenas = alloc.PinnedPools()
	if ot != nil {
		res.Obs = ot.finish(tr.Program, tr.Table)
	}
	return res, nil
}
