package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/callchain"
	"repro/internal/heapsim"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/synth"
)

// AllocatorNames lists the simulators RunSim drives by name, in report
// order. (SiteArena needs the sited replay loop and is not part of the
// standard matrix.)
var AllocatorNames = []string{"firstfit", "bestfit", "bsd", "arena", "segfit"}

// PredictorModes are the prediction configurations a matrix job can ask
// for: none (no hints), self (trained on the measured input itself), and
// true (trained on the Train input — the paper's honest configuration).
var PredictorModes = []string{"none", "self", "true"}

// NewAllocator builds a fresh simulator by name.
func NewAllocator(name string) (heapsim.Allocator, error) {
	switch name {
	case "firstfit":
		return heapsim.NewFirstFit(), nil
	case "bestfit":
		return heapsim.NewBestFit(), nil
	case "bsd":
		return heapsim.NewBSD(), nil
	case "arena":
		return heapsim.NewArena(), nil
	case "segfit":
		return heapsim.NewSegFit(), nil
	}
	return nil, fmt.Errorf("core: unknown allocator %q (want %s)", name, strings.Join(AllocatorNames, ", "))
}

// MustNewAllocator is NewAllocator for known-good names; it panics on a
// bad one (test helper).
func MustNewAllocator(name string) heapsim.Allocator {
	a, err := NewAllocator(name)
	if err != nil {
		panic(err)
	}
	return a
}

// MatrixJob names one cell of the model × allocator × predictor matrix:
// replay the model's Test input through the allocator, with the requested
// prediction mode.
type MatrixJob struct {
	Model     string `json:"model"`
	Allocator string `json:"allocator"`
	Predictor string `json:"predictor"` // "none", "self", or "true"
}

// String renders the job as model/allocator/predictor.
func (j MatrixJob) String() string {
	return j.Model + "/" + j.Allocator + "/" + j.Predictor
}

// Validate checks every field against the known sets.
func (j MatrixJob) Validate() error {
	if synth.ByName(j.Model) == nil {
		return fmt.Errorf("core: unknown model %q (want %s)", j.Model, strings.Join(ProgramOrder, ", "))
	}
	if _, err := NewAllocator(j.Allocator); err != nil {
		return err
	}
	switch j.Predictor {
	case "none", "self", "true":
		return nil
	}
	return fmt.Errorf("core: unknown predictor mode %q (want none, self, true)", j.Predictor)
}

// ParseMatrix expands a compact matrix spec into jobs. The spec is up to
// three /-separated segments — models, allocators, predictor modes —
// each a comma list or "all"; omitted segments default to all allocators
// and true prediction. Examples:
//
//	all                     every model × every allocator × true
//	gawk,cfrac/arena        those two models on the arena allocator, true
//	perl/all/none,true      perl on every allocator, with and without hints
func ParseMatrix(spec string) ([]MatrixJob, error) {
	parts := strings.Split(spec, "/")
	if len(parts) > 3 {
		return nil, fmt.Errorf("core: matrix spec %q has more than models/allocators/predictors", spec)
	}
	pick := func(i int, all []string) []string {
		if i >= len(parts) || parts[i] == "" || parts[i] == "all" {
			return all
		}
		return strings.Split(parts[i], ",")
	}
	models := pick(0, ProgramOrder)
	allocs := pick(1, AllocatorNames)
	preds := []string{"true"}
	if len(parts) >= 3 {
		preds = pick(2, PredictorModes)
	}
	jobs := make([]MatrixJob, 0, len(models)*len(allocs)*len(preds))
	for _, m := range models {
		for _, a := range allocs {
			for _, p := range preds {
				j := MatrixJob{Model: m, Allocator: a, Predictor: p}
				if err := j.Validate(); err != nil {
					return nil, err
				}
				jobs = append(jobs, j)
			}
		}
	}
	return jobs, nil
}

// MatrixRunner executes matrix jobs against one Config. It never keeps a
// materialized trace: what is cached per model is the pair of
// streaming-trained predictors (true and self) plus the exact Test-input
// event count, all derived from generator configs — a few kilobytes
// instead of the full event list. Each job then regenerates its Test
// events through a fresh synth.Source, so replay memory is bounded by
// the live-object set. All methods are safe for concurrent use —
// lpserve's workers and RunAll's pool run jobs in parallel, each with
// its own collector.
type MatrixRunner struct {
	cfg Config

	mu     sync.Mutex
	arts   map[string]*artEntry
	models map[string]*modelEntry
}

type artEntry struct {
	once sync.Once
	art  *Artifacts
	err  error
}

// modelEntry is the per-model shared state: predictors and the test
// event count, built once under the sync.Once. The predictors' chain
// tables are pre-warmed against a scratch Test table during build, so
// the concurrent per-job mappers only ever hit read-only lookups on the
// shared tables (callchain.Table is not itself goroutine-safe).
type modelEntry struct {
	once       sync.Once
	truePred   *profile.Predictor
	selfPred   *profile.Predictor
	testEvents int
	err        error
}

// NewMatrixRunner returns a runner over the given experiment config.
func NewMatrixRunner(cfg Config) *MatrixRunner {
	return &MatrixRunner{
		cfg:    cfg,
		arts:   make(map[string]*artEntry),
		models: make(map[string]*modelEntry),
	}
}

// Artifacts returns the (cached) fully materialized artifacts for a
// model — traces, objects, and databases. Matrix jobs do not need them
// (Run is fully streaming); this exists for table-rendering tools that
// work over annotated object lists.
func (r *MatrixRunner) Artifacts(model string) (*Artifacts, error) {
	m := synth.ByName(model)
	if m == nil {
		return nil, fmt.Errorf("core: unknown model %q", model)
	}
	r.mu.Lock()
	e, ok := r.arts[model]
	if !ok {
		e = &artEntry{}
		r.arts[model] = e
	}
	r.mu.Unlock()
	e.once.Do(func() { e.art, e.err = r.cfg.Build(m) })
	return e.art, e.err
}

// model returns the (cached) streaming-trained per-model state.
func (r *MatrixRunner) model(name string) (*modelEntry, error) {
	m := synth.ByName(name)
	if m == nil {
		return nil, fmt.Errorf("core: unknown model %q", name)
	}
	r.mu.Lock()
	e, ok := r.models[name]
	if !ok {
		e = &modelEntry{}
		r.models[name] = e
	}
	r.mu.Unlock()
	e.once.Do(func() { e.build(r.cfg, m) })
	return e, e.err
}

func (e *modelEntry) build(cfg Config, m *synth.Model) {
	train := func(in synth.Input) (*profile.Predictor, error) {
		src, err := m.Source(cfg.genConfig(in))
		if err != nil {
			return nil, err
		}
		db, err := profile.TrainSource(src, cfg.Profile)
		if err != nil {
			return nil, err
		}
		return db.Predictor(), nil
	}
	if e.truePred, e.err = train(synth.Train); e.err != nil {
		return
	}
	if e.selfPred, e.err = train(synth.Test); e.err != nil {
		return
	}
	if e.testEvents, e.err = m.CountEvents(cfg.genConfig(synth.Test)); e.err != nil {
		return
	}
	// Pre-warm the shared predictor tables: map every chain a Test
	// replay can present (the per-job tables are deterministic copies of
	// this scratch table) so the site chains and their function names
	// are interned now, while we are still single-threaded. Concurrent
	// jobs then only perform read-only lookups on the shared tables.
	src, err := m.Source(cfg.genConfig(synth.Test))
	if err != nil {
		e.err = err
		return
	}
	tb := src.Table()
	for _, p := range []*profile.Predictor{e.truePred, e.selfPred} {
		mapper := p.NewMapper(tb)
		for id := 1; id < tb.NumChains(); id++ {
			mapper.PredictShort(callchain.ChainID(id), 0)
		}
	}
}

// Run executes one matrix job, observing it through the optional
// collector (which may be scraped concurrently mid-replay). The job's
// Test events are regenerated through a fresh streaming source, so a
// run's memory footprint is the live-object set, not the trace length;
// the SimResult (including the obs snapshot) is byte-identical to
// replaying the materialized Test trace.
func (r *MatrixRunner) Run(j MatrixJob, col *obs.Collector) (SimResult, error) {
	if err := j.Validate(); err != nil {
		return SimResult{}, err
	}
	e, err := r.model(j.Model)
	if err != nil {
		return SimResult{}, err
	}
	var pred *profile.Predictor
	switch j.Predictor {
	case "true":
		pred = e.truePred
	case "self":
		pred = e.selfPred
	}
	alloc, err := NewAllocator(j.Allocator)
	if err != nil {
		return SimResult{}, err
	}
	src, err := synth.ByName(j.Model).Source(r.cfg.genConfig(synth.Test))
	if err != nil {
		return SimResult{}, err
	}
	src.SetCount(e.testEvents)
	return RunSimSource(src, alloc, pred, col)
}

// MatrixResult pairs a job with its outcome.
type MatrixResult struct {
	Job MatrixJob
	Res SimResult
	Err error
}

// RunAll executes the jobs on a pool of workers goroutines (workers <= 1
// runs serially) and returns results in job order. newCollector, when
// non-nil, supplies each job's observer.
func (r *MatrixRunner) RunAll(jobs []MatrixJob, workers int, newCollector func(MatrixJob) *obs.Collector) []MatrixResult {
	results := make([]MatrixResult, len(jobs))
	if workers < 1 {
		workers = 1
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				j := jobs[i]
				var col *obs.Collector
				if newCollector != nil {
					col = newCollector(j)
				}
				res, err := r.Run(j, col)
				results[i] = MatrixResult{Job: j, Res: res, Err: err}
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// SortJobs orders jobs deterministically: paper program order, then
// allocator report order, then predictor mode.
func SortJobs(jobs []MatrixJob) {
	rank := func(list []string, v string) int {
		for i, s := range list {
			if s == v {
				return i
			}
		}
		return len(list)
	}
	sort.SliceStable(jobs, func(a, b int) bool {
		ja, jb := jobs[a], jobs[b]
		if ra, rb := rank(ProgramOrder, ja.Model), rank(ProgramOrder, jb.Model); ra != rb {
			return ra < rb
		}
		if ra, rb := rank(AllocatorNames, ja.Allocator), rank(AllocatorNames, jb.Allocator); ra != rb {
			return ra < rb
		}
		return rank(PredictorModes, ja.Predictor) < rank(PredictorModes, jb.Predictor)
	})
}
