package core

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/obs"
)

// BenchSchema is the bench-file wire-format version; ReadBench rejects
// files without it, mirroring the obs snapshot schema gate.
const BenchSchema = 1

// BenchRun is one matrix cell's deterministic results: the headline
// simulation aggregates plus the full flattened obs metric set. Every
// value derives from seeded replays on the bytes-allocated clock, so two
// runs of the same code at the same scale are byte-identical — which is
// what lets cmd/lpdiff gate regressions against a committed baseline.
type BenchRun struct {
	Model     string `json:"model"`
	Allocator string `json:"allocator"`
	Predictor string `json:"predictor"`

	Ops           int64   `json:"ops"` // allocs + frees replayed
	TotalAllocs   int64   `json:"total_allocs"`
	TotalBytes    int64   `json:"total_bytes"` // the final byte clock
	MaxHeap       int64   `json:"max_heap"`
	SearchLenMean float64 `json:"search_len_mean"` // free-list probes or arena scans per alloc
	FragPeakPct   float64 `json:"frag_peak_pct"`   // worst 1 - live/heap over the timeline

	// Metrics is the flattened obs snapshot (counters, gauges,
	// histograms, event totals) plus the derived sim_* aggregates above
	// under stable names.
	Metrics map[string]float64 `json:"metrics"`
}

// BenchFile is what cmd/lpbench writes (BENCH_<label>.json) and
// cmd/lpdiff compares.
type BenchFile struct {
	Schema   int        `json:"schema"`
	Label    string     `json:"label"`
	Scale    float64    `json:"scale"`
	SeedBase uint64     `json:"seed_base"`
	Runs     []BenchRun `json:"runs"`
}

// NewBenchRun condenses one observed matrix result into a bench run.
func NewBenchRun(j MatrixJob, res SimResult) BenchRun {
	r := BenchRun{
		Model:       j.Model,
		Allocator:   j.Allocator,
		Predictor:   j.Predictor,
		Ops:         res.Counts.Allocs + res.Counts.Frees,
		TotalAllocs: res.TotalAllocs,
		TotalBytes:  res.TotalBytes,
		MaxHeap:     res.MaxHeap,
	}
	r.Metrics = res.Obs.Flatten()
	r.FragPeakPct = res.Obs.FragPeakPct()
	r.SearchLenMean = searchLenMean(j.Allocator, res.Obs)
	r.Metrics["sim_ops"] = float64(r.Ops)
	r.Metrics["sim_total_bytes"] = float64(r.TotalBytes)
	r.Metrics["sim_max_heap_bytes"] = float64(r.MaxHeap)
	r.Metrics["sim_search_len_mean"] = r.SearchLenMean
	r.Metrics["sim_frag_peak_pct"] = r.FragPeakPct
	if r.Ops > 0 {
		r.Metrics["sim_bytes_per_op"] = float64(r.TotalBytes) / float64(r.Ops)
	}
	return r
}

// searchLenMean picks the allocator's search-effort histogram: free-list
// probes for the list allocators, arena scans for the arena.
func searchLenMean(alloc string, s *obs.Snapshot) float64 {
	if s == nil {
		return 0
	}
	for _, name := range []string{alloc + ".search_len", alloc + ".scan_len"} {
		if h, ok := s.Histograms[name]; ok {
			return h.Mean()
		}
	}
	return 0
}

// WriteBench writes a bench file as indented JSON, stamping the schema.
func WriteBench(w io.Writer, f *BenchFile) error {
	if f == nil {
		return fmt.Errorf("core: nil bench file")
	}
	if f.Schema == 0 {
		f.Schema = BenchSchema
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// ReadBench reads a bench file, rejecting missing or unknown schema
// versions.
func ReadBench(r io.Reader) (*BenchFile, error) {
	var f BenchFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("core: decoding bench file: %w", err)
	}
	if f.Schema == 0 {
		return nil, fmt.Errorf("core: bench file has no schema version (not an lpbench file?)")
	}
	if f.Schema > BenchSchema {
		return nil, fmt.Errorf("core: bench schema version %d is newer than this tool's %d; upgrade the tool suite", f.Schema, BenchSchema)
	}
	return &f, nil
}

// Flatten reduces a bench file to one metric map keyed
// model/allocator/predictor/metric, the shape cmd/lpdiff compares.
func (f *BenchFile) Flatten() map[string]float64 {
	out := make(map[string]float64)
	for _, r := range f.Runs {
		prefix := r.Model + "/" + r.Allocator + "/" + r.Predictor + "/"
		for k, v := range r.Metrics {
			out[prefix+k] = v
		}
	}
	return out
}
