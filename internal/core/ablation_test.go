package core

import (
	"testing"

	"repro/internal/heapsim"
	"repro/internal/synth"
)

func TestThresholdSweepMonotone(t *testing.T) {
	a := buildArtifacts(t, "ghost")
	rows := DefaultConfig(testScale).ThresholdSweep(a, []int64{8, 16, 32, 64, 128})
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	// Raising the threshold can only admit more (or equal) volume: the
	// degenerate case of the maximum lifetime predicts everything
	// (paper §4.1).
	for i := 1; i < len(rows); i++ {
		if rows[i].PredPct+1e-9 < rows[i-1].PredPct {
			t.Fatalf("prediction decreased with threshold: %+v", rows)
		}
	}
	if rows[4].PredPct <= rows[0].PredPct {
		t.Fatal("threshold sweep is flat; workload insensitive to the parameter")
	}
}

func TestAdmitSweepErrorGrows(t *testing.T) {
	a := buildArtifacts(t, "cfrac")
	rows := DefaultConfig(testScale).AdmitSweep(a, []float64{1.0, 0.95, 0.9})
	// Relaxing admission admits mixed sites: self prediction rises...
	if rows[2].SelfPredPct < rows[0].SelfPredPct {
		t.Fatalf("relaxed admission predicted less: %+v", rows)
	}
	// ...and true-prediction error cannot shrink.
	if rows[2].TrueErrorPct+1e-9 < rows[0].TrueErrorPct {
		t.Fatalf("relaxed admission reduced error: %+v", rows)
	}
}

func TestArenaGeometryBlockingHelps(t *testing.T) {
	// CFRAC's pollution: a single 64KB arena pins entirely; 16x4KB keeps
	// a trickle of arena allocations alive (the paper's blocking
	// motivation).
	a := buildArtifacts(t, "cfrac")
	rows, err := DefaultConfig(testScale).ArenaGeometrySweep(a, [][2]int{{1, 64}, {16, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if rows[1].ArenaAllocPct < rows[0].ArenaAllocPct {
		t.Fatalf("blocking did not help under pollution: %+v", rows)
	}
}

func TestFitPolicySweep(t *testing.T) {
	a := buildArtifacts(t, "ghost")
	rows, err := DefaultConfig(testScale).FitPolicySweep(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[string]FitRow{}
	for _, r := range rows {
		byName[r.Policy] = r
		if r.MaxHeapKB <= 0 {
			t.Fatalf("empty row %+v", r)
		}
	}
	// Best fit packs at least as tightly as next fit on ghost.
	if byName["best-fit"].MaxHeapKB > byName["next-fit (A4')"].MaxHeapKB {
		t.Fatalf("best fit looser than next fit: %+v", rows)
	}
}

func TestCCEQualityClose(t *testing.T) {
	// CCE tracks the exact predictor closely. It may even predict
	// slightly MORE: XOR keys cancel even recursion instead of merging
	// the chain into a long-lived partner's (the recursion-merge sites
	// of ESPRESSO and PERL stay separated under CCE).
	a := buildArtifacts(t, "gawk")
	row := DefaultConfig(testScale).CCEQuality(a)
	if row.CCEPredPct < row.ExactPredPct*0.8 {
		t.Fatalf("CCE lost too much to collisions: %+v", row)
	}
	if row.CCEPredPct > row.ExactPredPct+10 {
		t.Fatalf("CCE predicted implausibly more than exact: %+v", row)
	}
}

func TestGCPretenuringReducesCopy(t *testing.T) {
	a := buildArtifacts(t, "gawk")
	row, err := DefaultConfig(testScale).GCPretenuring(a)
	if err != nil {
		t.Fatal(err)
	}
	if row.PreCopiedKB > row.BaseCopiedKB {
		t.Fatalf("pretenuring increased copying: %+v", row)
	}
}

func TestAblationsAcrossModels(t *testing.T) {
	// Smoke: every ablation runs on every model without error.
	if testing.Short() {
		t.Skip("smoke sweep skipped in -short mode")
	}
	cfg := DefaultConfig(testScale)
	for _, m := range synth.All() {
		a, err := cfg.Build(m)
		if err != nil {
			t.Fatal(err)
		}
		cfg.ThresholdSweep(a, []int64{16, 32})
		cfg.AdmitSweep(a, []float64{1.0, 0.95})
		if _, err := cfg.ArenaGeometrySweep(a, [][2]int{{16, 4}}); err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if _, err := cfg.FitPolicySweep(a); err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		cfg.CCEQuality(a)
		if _, err := cfg.GCPretenuring(a); err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
	}
}

func TestCustomAllocComparison(t *testing.T) {
	a := buildArtifacts(t, "ghost")
	row, err := DefaultConfig(testScale).CustomAllocComparison(a)
	if err != nil {
		t.Fatal(err)
	}
	// Size coverage is easy: the fast path should carry most allocs.
	if row.CustomFastPct < 50 {
		t.Fatalf("custom fast path only %.1f%%", row.CustomFastPct)
	}
	// Per-size segregation removes churn from the general heap too, so
	// on GHOST it must beat plain first-fit (size segregation
	// approximates lifetime segregation — see the method's doc comment).
	if row.CustomHeapKB >= row.FirstFitHeapKB {
		t.Fatalf("customalloc heap %dKB not below first-fit %dKB",
			row.CustomHeapKB, row.FirstFitHeapKB)
	}
}

func TestSiteArenaIsolatesCfracPollution(t *testing.T) {
	// The shared 16x4KB arena collapses under CFRAC's mispredictions
	// (Table 7); giving each site its own pool confines the damage to
	// the polluting site and the rest of the predicted volume keeps
	// bump-allocating.
	a := buildArtifacts(t, "cfrac")
	shared, err := RunSim(a.TestTrace, heapsim.NewArena(), a.TrainPredictor)
	if err != nil {
		t.Fatal(err)
	}
	// Bounded variant: 64 hash buckets + online demotion. A moderate
	// but consistent recovery at the shared design's memory scale.
	bounded, err := RunSimSited(a.TestTrace, heapsim.NewSiteArena(), a.TrainPredictor)
	if err != nil {
		t.Fatal(err)
	}
	if bounded.ArenaAllocPct < 1.3*shared.ArenaAllocPct {
		t.Fatalf("bounded site arenas did not recover cfrac: shared %.1f%%, bounded %.1f%%",
			shared.ArenaAllocPct, bounded.ArenaAllocPct)
	}
	if bounded.Counts.ArenaDemotions == 0 {
		t.Fatal("no polluting sites were demoted online")
	}
	// Unbounded per-site pools isolate pollution fully — CFRAC recovers
	// most of its predicted fraction — at a memory cost that grows with
	// the number of hot sites.
	unbounded, err := RunSimSited(a.TestTrace,
		&heapsim.SiteArena{MaxSites: 1 << 20}, a.TrainPredictor)
	if err != nil {
		t.Fatal(err)
	}
	if unbounded.ArenaAllocPct < 4*shared.ArenaAllocPct {
		t.Fatalf("unbounded site arenas did not recover cfrac: shared %.1f%%, unbounded %.1f%%",
			shared.ArenaAllocPct, unbounded.ArenaAllocPct)
	}
	t.Logf("shared %.1f%%, bounded %.1f%% (demotions %d), unbounded %.1f%% (heap %dKB vs %dKB vs %dKB)",
		shared.ArenaAllocPct, bounded.ArenaAllocPct, bounded.Counts.ArenaDemotions,
		unbounded.ArenaAllocPct, shared.MaxHeap>>10, bounded.MaxHeap>>10, unbounded.MaxHeap>>10)
}
