package lifetime_test

import (
	"bytes"
	"math"
	"testing"

	lifetime "repro"
)

// TestPublicWorkflow exercises the documented quick-start path end to end
// through the public facade only.
func TestPublicWorkflow(t *testing.T) {
	m := lifetime.ModelByName("gawk")
	if m == nil {
		t.Fatal("gawk model missing")
	}
	train, err := lifetime.GenerateTrace(m, lifetime.TrainInput, 1, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	test, err := lifetime.GenerateTrace(m, lifetime.TestInput, 2, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := lifetime.Train(train, lifetime.DefaultProfileConfig())
	if err != nil {
		t.Fatal(err)
	}
	ev, err := lifetime.Evaluate(test, pred)
	if err != nil {
		t.Fatal(err)
	}
	if ev.PredictedShortPct() < 90 {
		t.Fatalf("gawk true prediction %.1f%%, want ~99%%", ev.PredictedShortPct())
	}
	res, err := lifetime.Simulate(test, lifetime.NewArenaAllocator(), pred)
	if err != nil {
		t.Fatal(err)
	}
	if res.ArenaBytePct < 80 {
		t.Fatalf("gawk arena bytes %.1f%%", res.ArenaBytePct)
	}
	if res.MaxHeap < 64<<10 {
		t.Fatalf("arena heap %d below arena area", res.MaxHeap)
	}
}

func TestPublicModels(t *testing.T) {
	ms := lifetime.Models()
	if len(ms) != 5 {
		t.Fatalf("Models() returned %d models", len(ms))
	}
	if lifetime.ModelByName("nope") != nil {
		t.Fatal("unknown model resolved")
	}
}

func TestPublicTraceIO(t *testing.T) {
	m := lifetime.ModelByName("perl")
	tr, err := lifetime.GenerateTrace(m, lifetime.TrainInput, 3, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := lifetime.WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := lifetime.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != len(tr.Events) {
		t.Fatalf("round trip lost events: %d vs %d", len(got.Events), len(tr.Events))
	}
	var tbuf bytes.Buffer
	if err := lifetime.WriteTraceText(&tbuf, tr); err != nil {
		t.Fatal(err)
	}
	got2, err := lifetime.ReadTraceText(&tbuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got2.Events) != len(tr.Events) {
		t.Fatal("text round trip lost events")
	}
}

func TestPublicRecorderToPredictor(t *testing.T) {
	// Record a tiny program, train on it, and check the hot site is
	// predicted while the immortal one is not.
	run := func(input string, n int) *lifetime.Trace {
		rec := lifetime.NewRecorder("toy", input)
		main := rec.Enter("main")
		for i := 0; i < n; i++ {
			loop := rec.Enter("loop")
			id := rec.Malloc(16)
			if err := rec.Free(id); err != nil {
				t.Fatal(err)
			}
			rec.Exit(loop)
			if i%10 == 0 {
				g := rec.Enter("global")
				rec.Malloc(64) // never freed
				rec.Exit(g)
			}
		}
		rec.Exit(main)
		tr := rec.Trace()
		// Push total volume well past the 32KB threshold so the
		// immortal site is observably long-lived.
		pad := rec.Enter("main")
		_ = pad
		return tr
	}
	train := run("train", 5000)
	pred, err := lifetime.Train(train, lifetime.DefaultProfileConfig())
	if err != nil {
		t.Fatal(err)
	}
	test := run("test", 3000)
	ev, err := lifetime.Evaluate(test, pred)
	if err != nil {
		t.Fatal(err)
	}
	if ev.PredictedShortPct() < 50 {
		t.Fatalf("hot loop site not predicted: %.1f%%", ev.PredictedShortPct())
	}
	if ev.ErrorPct() != 0 {
		t.Fatalf("unexpected error bytes: %.2f%%", ev.ErrorPct())
	}
}

func TestPublicQuantiles(t *testing.T) {
	m := lifetime.ModelByName("cfrac")
	tr, err := lifetime.GenerateTrace(m, lifetime.TrainInput, 5, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	objs, err := lifetime.Annotate(tr)
	if err != nil {
		t.Fatal(err)
	}
	qs := lifetime.LifetimeQuantiles(objs, []float64{0.25, 0.5, 0.75}, true)
	for i := 1; i < len(qs); i++ {
		if qs[i] < qs[i-1] || math.IsNaN(qs[i]) {
			t.Fatalf("bad quantiles %v", qs)
		}
	}
	st, err := lifetime.ComputeStats(tr)
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalObjects != int64(len(objs)) {
		t.Fatal("stats/annotate disagree")
	}
}

func TestPublicCostModel(t *testing.T) {
	m := lifetime.ModelByName("gawk")
	tr, err := lifetime.GenerateTrace(m, lifetime.TestInput, 7, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := lifetime.Train(tr, lifetime.DefaultProfileConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := lifetime.Simulate(tr, lifetime.NewArenaAllocator(), pred)
	if err != nil {
		t.Fatal(err)
	}
	params := lifetime.DefaultCostParams()
	len4 := lifetime.CostArenaLen4(res.Counts, params)
	cce := lifetime.CostArenaCCE(res.Counts, params, m.CallsPerAlloc)
	if len4.Alloc <= 18 {
		t.Fatalf("len4 alloc cost %.1f must exceed the 18-instruction check", len4.Alloc)
	}
	if cce.Free != len4.Free {
		t.Fatal("prediction scheme must not change free cost")
	}
}

func TestPublicMergeTraces(t *testing.T) {
	mk := func(fn string) *lifetime.Trace {
		rec := lifetime.NewRecorder("sharded", "train")
		f := rec.Enter(fn)
		for i := 0; i < 50; i++ {
			id := rec.Malloc(16)
			if err := rec.Free(id); err != nil {
				t.Fatal(err)
			}
		}
		rec.Exit(f)
		return rec.Trace()
	}
	merged, err := lifetime.MergeTraces([]*lifetime.Trace{mk("worker1"), mk("worker2")})
	if err != nil {
		t.Fatal(err)
	}
	st, err := lifetime.ComputeStats(merged)
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalObjects != 100 {
		t.Fatalf("merged objects = %d", st.TotalObjects)
	}
	// The merged trace trains like any other.
	if _, err := lifetime.Train(merged, lifetime.DefaultProfileConfig()); err != nil {
		t.Fatal(err)
	}
}
