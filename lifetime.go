// Package lifetime is a Go reproduction of Barrett & Zorn, "Using Lifetime
// Predictors to Improve Memory Allocation Performance" (PLDI 1993): a
// profile-driven system that predicts, at allocation time, which objects
// will be short-lived — keyed by allocation site (call-chain) and request
// size — and segregates them into small bump-allocated arenas over a
// general-purpose first-fit heap.
//
// The package is the public facade over the building blocks in internal/:
//
//   - allocation traces (record with a Recorder, or generate with the five
//     calibrated synthetic program models standing in for the paper's
//     CFRAC, ESPRESSO, GAWK, GHOST and PERL workloads);
//   - training: per-site lifetime statistics summarized with P² quantile
//     histograms, and the all-short-lived predictor selection rule;
//   - prediction: self and true (cross-input) prediction with 4-byte size
//     rounding for site mapping, configurable call-chain abstraction
//     (complete chain with recursion elimination, length-N sub-chains, or
//     size only), plus call-chain encryption;
//   - simulation: first-fit (Knuth), BSD, and lifetime-predicting arena
//     allocators with instruction-cost and heap-size accounting;
//   - the experiment pipeline regenerating every table in the paper.
//
// # Quick start
//
//	m := lifetime.ModelByName("gawk")
//	train, _ := lifetime.GenerateTrace(m, lifetime.TrainInput, 1, 0.05)
//	test, _ := lifetime.GenerateTrace(m, lifetime.TestInput, 2, 0.05)
//
//	pred, _ := lifetime.Train(train, lifetime.DefaultProfileConfig())
//	eval, _ := lifetime.Evaluate(test, pred)
//	fmt.Printf("predicted short-lived: %.1f%%\n", eval.PredictedShortPct())
//
//	res, _ := lifetime.Simulate(test, lifetime.NewArenaAllocator(), pred)
//	fmt.Printf("arena bytes: %.1f%%  heap: %dKB\n",
//		res.ArenaBytePct, res.MaxHeap>>10)
//
// See examples/ for runnable programs, cmd/lptables for the full
// paper-vs-measured table harness, and DESIGN.md / EXPERIMENTS.md for the
// reproduction methodology and results.
package lifetime

import (
	"io"

	"repro/internal/apptrace"
	"repro/internal/bumparena"
	"repro/internal/callchain"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/gcsim"
	"repro/internal/heapsim"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/synth"
	"repro/internal/trace"
)

// Core data types, re-exported.
type (
	// Trace is an allocation-event trace; time is bytes allocated.
	Trace = trace.Trace
	// Event is one allocation or free.
	Event = trace.Event
	// Object is a per-object record with its lifetime in bytes.
	Object = trace.Object
	// ObjectID identifies an object within a trace.
	ObjectID = trace.ObjectID
	// TraceStats summarizes a trace (Table 2 metrics).
	TraceStats = trace.Stats

	// ChainTable interns function names and call-chains.
	ChainTable = callchain.Table
	// ChainID identifies an interned call-chain.
	ChainID = callchain.ChainID

	// Recorder instruments a Go program to emit a Trace.
	Recorder = apptrace.Recorder

	// Model is a synthetic workload model.
	Model = synth.Model
	// WorkloadInput selects a model's training or test input.
	WorkloadInput = synth.Input

	// ProfileConfig controls site keying and predictor admission.
	ProfileConfig = profile.Config
	// SiteDB is a trained per-site lifetime database.
	SiteDB = profile.DB
	// SiteStats holds one site's lifetime statistics.
	SiteStats = profile.SiteStats
	// Predictor answers "will this allocation be short-lived?".
	Predictor = profile.Predictor
	// Eval holds prediction-effectiveness metrics (Tables 4-6).
	Eval = profile.Eval

	// Allocator is the allocator-simulator interface.
	Allocator = heapsim.Allocator
	// FirstFitAllocator simulates Knuth's first-fit with a roving pointer.
	FirstFitAllocator = heapsim.FirstFit
	// BestFitAllocator simulates best-fit over the same free list.
	BestFitAllocator = heapsim.BestFit
	// BSDAllocator simulates the 4.2BSD power-of-two malloc.
	BSDAllocator = heapsim.BSD
	// ArenaAllocator simulates the paper's lifetime-predicting allocator.
	ArenaAllocator = heapsim.Arena
	// SiteArenaAllocator gives every predicted site its own arena pool,
	// isolating misprediction pollution (a future-work variant).
	SiteArenaAllocator = heapsim.SiteArena
	// OpCounts are allocator operation counters for the cost model.
	OpCounts = heapsim.OpCounts
	// CostParams are per-operation instruction estimates (Table 9).
	CostParams = costmodel.Params
	// PerOpCost is an instructions-per-alloc/free summary.
	PerOpCost = costmodel.PerOp

	// BumpAllocator is the working (non-simulated) lifetime-predicting
	// byte-buffer allocator prototype, trained from runtime.Callers
	// chains — the prototype the paper's conclusion calls for.
	BumpAllocator = bumparena.Allocator
	// BumpConfig sizes the prototype's arenas and training threshold.
	BumpConfig = bumparena.Config
	// BumpSiteDB is the prototype's trained site database.
	BumpSiteDB = bumparena.SiteDB
	// BumpStats counts the prototype's allocation paths.
	BumpStats = bumparena.Stats

	// GCConfig sizes the generational-collector simulator (extension).
	GCConfig = gcsim.Config
	// GCStats reports a generational-collector run's copying work.
	GCStats = gcsim.Stats

	// ExperimentConfig parameterizes the table experiments.
	ExperimentConfig = core.Config
	// Artifacts bundles a model's generated traces and trained predictor.
	Artifacts = core.Artifacts
	// SimResult summarizes one allocator simulation.
	SimResult = core.SimResult

	// ObsCollector records metrics, a timeline, and structured events
	// from an observed simulation; pass one as Simulate's optional
	// trailing argument.
	ObsCollector = obs.Collector
	// ObsOptions configures an ObsCollector.
	ObsOptions = obs.Options
	// ObsSnapshot is a serializable view of one observed run (what
	// `lpsim -obs` writes and `lpstats` renders).
	ObsSnapshot = obs.Snapshot
	// ObsPredSite attributes mispredictions (false-positive cost, false
	// negatives) to one allocation site in ObsSnapshot.PredSites.
	ObsPredSite = obs.PredSite

	// TraceSource streams allocation events one Next call at a time
	// (io.EOF marks a clean end); the whole pipeline — generation,
	// training, simulation, the CLI tools — runs over it at constant
	// memory. A materialized Trace adapts via NewTraceSource.
	TraceSource = trace.Source
	// TraceMeta is a source's identity and trailer totals (FunctionCalls
	// and NonHeapRefs are only final once Next has returned io.EOF for
	// trailer-carrying sources).
	TraceMeta = trace.Meta
	// TraceReader streams a serialized binary trace (either the legacy
	// count-prefixed or the streaming sentinel-terminated format).
	TraceReader = trace.Reader
	// TraceStreamWriter writes events incrementally in the streaming
	// binary format; Close writes the trailer.
	TraceStreamWriter = trace.Writer
	// ModelSource is a workload model's streaming generator.
	ModelSource = synth.Source
)

// The two inputs every workload model defines.
const (
	TrainInput = synth.Train
	TestInput  = synth.Test
)

// Models returns the five calibrated program models in the paper's order
// (cfrac, espresso, gawk, ghost, perl).
func Models() []*Model { return synth.All() }

// ModelByName returns a model by name, or nil.
func ModelByName(name string) *Model { return synth.ByName(name) }

// GenerateTrace generates a trace from a workload model. Scale 1.0
// reproduces the paper-scale run (millions of objects); smaller values are
// proportionally faster.
func GenerateTrace(m *Model, input WorkloadInput, seed uint64, scale float64) (*Trace, error) {
	return m.Generate(synth.Config{Input: input, Seed: seed, Scale: scale})
}

// GenerateSource returns a streaming generator over the model's events:
// the same sequence GenerateTrace materializes, produced one event per
// Next call with memory bounded by the live-object set.
func GenerateSource(m *Model, input WorkloadInput, seed uint64, scale float64) (*ModelSource, error) {
	return m.Source(synth.Config{Input: input, Seed: seed, Scale: scale})
}

// NewTraceSource adapts a materialized trace to the TraceSource
// interface.
func NewTraceSource(tr *Trace) TraceSource { return trace.NewSliceSource(tr) }

// CollectTrace drains a source into a materialized Trace (the inverse of
// NewTraceSource).
func CollectTrace(src TraceSource) (*Trace, error) { return trace.Collect(src) }

// NewTraceReader opens a streaming reader over a serialized binary
// trace; both binary formats are auto-detected.
func NewTraceReader(r io.Reader) (*TraceReader, error) { return trace.NewReader(r) }

// NewTraceStreamWriter opens a streaming binary trace writer. Events go
// out as they are written; Close appends the trailer totals.
func NewTraceStreamWriter(w io.Writer, meta TraceMeta, tb *ChainTable) (*TraceStreamWriter, error) {
	return trace.NewWriter(w, meta, tb)
}

// SimulateSource replays a streaming source through an allocator —
// Simulate at constant memory. The SimResult (observability snapshot
// included, when the source knows its event count) is identical to
// replaying the materialized trace.
func SimulateSource(src TraceSource, alloc Allocator, pred *Predictor, observers ...*ObsCollector) (SimResult, error) {
	return core.RunSimSource(src, alloc, pred, observers...)
}

// TrainDBSource builds a site database from a streaming source, holding
// only live-object state. With the default exact-count admission rule
// the resulting predictor is identical to TrainDB's over the
// materialized trace.
func TrainDBSource(src TraceSource, cfg ProfileConfig) (*SiteDB, error) {
	return profile.TrainSource(src, cfg)
}

// AnnotateSource computes per-object lifetimes from a streaming source,
// returning them in birth order like Annotate.
func AnnotateSource(src TraceSource) ([]Object, error) { return trace.AnnotateSource(src) }

// NewRecorder returns a Recorder for instrumenting a Go program.
func NewRecorder(program, input string) *Recorder {
	return apptrace.NewRecorder(program, input)
}

// DefaultProfileConfig returns the paper's predictor configuration: 32KB
// short-lived threshold, 4-byte size rounding, complete call-chains with
// recursion elimination, and the all-short-lived admission rule.
func DefaultProfileConfig() ProfileConfig { return profile.DefaultConfig() }

// Train builds a site database from a trace and returns its predictor.
func Train(tr *Trace, cfg ProfileConfig) (*Predictor, error) {
	db, err := profile.Train(tr, cfg)
	if err != nil {
		return nil, err
	}
	return db.Predictor(), nil
}

// TrainDB builds and returns the full site database (per-site quantile
// histograms included), from which Predictor() derives the predictor.
func TrainDB(tr *Trace, cfg ProfileConfig) (*SiteDB, error) {
	return profile.Train(tr, cfg)
}

// Evaluate runs a predictor over a trace and reports effectiveness. The
// trace may come from a different execution than the training run: sites
// are mapped by call-chain function names and rounded size, which is the
// paper's true prediction.
func Evaluate(tr *Trace, p *Predictor) (Eval, error) {
	return profile.Evaluate(tr, p)
}

// Annotate computes per-object lifetimes (in bytes allocated) for a trace.
func Annotate(tr *Trace) ([]Object, error) { return trace.Annotate(tr) }

// ComputeStats summarizes a trace.
func ComputeStats(tr *Trace) (TraceStats, error) { return trace.ComputeStats(tr) }

// LifetimeQuantiles returns exact lifetime quantiles for annotated
// objects, byte-weighted when byteWeighted is set (the paper's Table 3).
func LifetimeQuantiles(objs []Object, probs []float64, byteWeighted bool) []float64 {
	return profile.LifetimeQuantiles(objs, probs, byteWeighted)
}

// NewFirstFitAllocator returns a first-fit simulator with the default
// geometry (8-byte header and alignment, 8KB growth chunks).
func NewFirstFitAllocator() *FirstFitAllocator { return heapsim.NewFirstFit() }

// NewBestFitAllocator returns a best-fit simulator sharing the first-fit
// geometry.
func NewBestFitAllocator() *BestFitAllocator { return heapsim.NewBestFit() }

// NewBSDAllocator returns a 4.2BSD malloc simulator.
func NewBSDAllocator() *BSDAllocator { return heapsim.NewBSD() }

// NewArenaAllocator returns the paper's arena allocator: 16 x 4KB arenas
// over a first-fit general heap.
func NewArenaAllocator() *ArenaAllocator { return heapsim.NewArena() }

// NewSiteArenaAllocator returns the per-site arena variant (2 x 4KB per
// hot site, up to 64 sites); drive it with SimulateSited.
func NewSiteArenaAllocator() *SiteArenaAllocator { return heapsim.NewSiteArena() }

// SimulateSited replays a trace through the per-site arena allocator,
// routing each predicted-short allocation to its own site's pool. An
// optional trailing ObsCollector records metrics and events.
func SimulateSited(tr *Trace, alloc *SiteArenaAllocator, pred *Predictor, observers ...*ObsCollector) (SimResult, error) {
	return core.RunSimSited(tr, alloc, pred, observers...)
}

// Simulate replays a trace through an allocator; a non-nil predictor
// drives the predicted-short hint at each allocation. An optional
// trailing ObsCollector records metrics, a timeline, and structured
// events into SimResult.Obs; without one, behaviour and results are
// identical to the uninstrumented replay.
func Simulate(tr *Trace, alloc Allocator, pred *Predictor, observers ...*ObsCollector) (SimResult, error) {
	return core.RunSim(tr, alloc, pred, observers...)
}

// NewObsCollector returns an observability collector; see ObsOptions for
// the timeline cadence and event-window knobs.
func NewObsCollector(opts ObsOptions) *ObsCollector { return obs.NewCollector(opts) }

// WriteObsJSON writes an observability snapshot as JSON (the `lpsim
// -obs` format, rendered by `lpstats`).
func WriteObsJSON(w io.Writer, s *ObsSnapshot) error { return obs.WriteJSON(w, s) }

// ReadObsJSON reads a snapshot written by WriteObsJSON.
func ReadObsJSON(r io.Reader) (*ObsSnapshot, error) { return obs.ReadJSON(r) }

// DefaultCostParams returns the paper-anchored instruction estimates.
func DefaultCostParams() CostParams { return costmodel.DefaultParams() }

// CostBSD prices a BSD run's operation counts.
func CostBSD(c OpCounts, p CostParams) PerOpCost { return costmodel.BSD(c, p) }

// CostFirstFit prices a first-fit run's operation counts.
func CostFirstFit(c OpCounts, p CostParams) PerOpCost { return costmodel.FirstFit(c, p) }

// CostArenaLen4 prices an arena run using length-4 call-chain prediction.
func CostArenaLen4(c OpCounts, p CostParams) PerOpCost { return costmodel.ArenaLen4(c, p) }

// CostArenaCCE prices an arena run using call-chain encryption, amortizing
// the per-call key maintenance over allocations.
func CostArenaCCE(c OpCounts, p CostParams, callsPerAlloc float64) PerOpCost {
	return costmodel.ArenaCCE(c, p, callsPerAlloc)
}

// WriteTrace writes a trace in the compact binary format.
func WriteTrace(w io.Writer, tr *Trace) error { return trace.WriteBinary(w, tr) }

// ReadTrace reads a trace written by WriteTrace.
func ReadTrace(r io.Reader) (*Trace, error) { return trace.ReadBinary(r) }

// WriteTraceText and ReadTraceText use the human-readable text format.
func WriteTraceText(w io.Writer, tr *Trace) error { return trace.WriteText(w, tr) }

// ReadTraceText reads the text format.
func ReadTraceText(r io.Reader) (*Trace, error) { return trace.ReadText(r) }

// MergeTraces interleaves per-goroutine (sharded) traces by byte clock
// into one trace, re-basing object ids and re-interning chains. Use one
// Recorder per goroutine, then merge.
func MergeTraces(traces []*Trace) (*Trace, error) { return trace.Merge(traces) }

// Experiments returns the experiment configuration used by cmd/lptables
// and the benchmarks: the paper-faithful setup at the given scale.
func Experiments(scale float64) ExperimentConfig { return core.DefaultConfig(scale) }

// DefaultBumpConfig returns the prototype allocator's paper-mirroring
// parameters: 16 x 4KB arenas, 32KB threshold, length-4 PC chains.
func DefaultBumpConfig() BumpConfig { return bumparena.DefaultConfig() }

// NewBumpTraining returns a prototype allocator in training mode; call
// Finish to obtain the site database.
func NewBumpTraining(cfg BumpConfig) *BumpAllocator { return bumparena.NewTraining(cfg) }

// NewBumpPredicting returns a prototype allocator that bump-allocates
// buffers at sites the database predicts short-lived.
func NewBumpPredicting(cfg BumpConfig, db *BumpSiteDB) *BumpAllocator {
	return bumparena.NewPredicting(cfg, db)
}

// DefaultGCConfig returns the generational-collector extension's default
// geometry: a 256KB nursery over a 4MB old-generation budget.
func DefaultGCConfig() GCConfig { return gcsim.DefaultConfig() }

// SimulateGC replays a trace through the two-generation copying-collector
// simulator. A non-nil predictor enables pretenuring: allocations NOT
// predicted short-lived go directly to the old generation, quantifying the
// paper's claim that lifetime prediction helps generational collectors.
func SimulateGC(tr *Trace, cfg GCConfig, pred *Predictor) (GCStats, error) {
	return gcsim.Run(tr, cfg, pred)
}
