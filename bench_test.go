// Benchmarks regenerating every table of the paper (Tables 2-9; the paper
// has no numbered figures) plus ablations over the design parameters
// DESIGN.md calls out. Each table benchmark reports its headline measured
// values as custom metrics so `go test -bench=.` doubles as a compact
// reproduction report; cmd/lptables prints the full paper-vs-measured
// tables.
package lifetime_test

import (
	"fmt"
	"sync"
	"testing"

	lifetime "repro"
	"repro/internal/core"
	"repro/internal/heapsim"
	"repro/internal/profile"
	"repro/internal/synth"
	"repro/internal/trace"
)

// benchScale keeps the full suite fast; percentages are essentially
// scale-invariant (see EXPERIMENTS.md for full-scale runs).
const benchScale = 0.02

// benchEngine shares one core.Engine across all benchmarks, so artifact
// builds are cached (and table-warmed) exactly as cmd/lptables caches
// them, and the engine-level benchmarks reuse the same instance.
var (
	engOnce sync.Once
	eng     *core.Engine
)

func benchEngine() *core.Engine {
	engOnce.Do(func() {
		eng = core.NewEngine(core.DefaultConfig(benchScale))
	})
	return eng
}

func artifacts(b *testing.B, name string) *core.Artifacts {
	b.Helper()
	a, err := benchEngine().Artifacts(name)
	if err != nil {
		b.Fatal(err)
	}
	return a
}

func perModel(b *testing.B, f func(b *testing.B, a *core.Artifacts)) {
	for _, name := range core.ProgramOrder {
		name := name
		b.Run(name, func(b *testing.B) {
			a := artifacts(b, name)
			f(b, a)
		})
	}
}

func BenchmarkTable2Stats(b *testing.B) {
	cfg := core.DefaultConfig(benchScale)
	perModel(b, func(b *testing.B, a *core.Artifacts) {
		var row core.Table2Row
		var err error
		for i := 0; i < b.N; i++ {
			row, err = cfg.Table2(a)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(row.HeapRefPct, "heapref%")
		b.ReportMetric(float64(row.MaxBytes)/1024, "maxliveKB")
	})
}

func BenchmarkTable3Quantiles(b *testing.B) {
	cfg := core.DefaultConfig(benchScale)
	perModel(b, func(b *testing.B, a *core.Artifacts) {
		var row core.Table3Row
		for i := 0; i < b.N; i++ {
			row = cfg.Table3(a)
		}
		b.ReportMetric(row.Quartiles[2], "median_bytes")
	})
}

func BenchmarkTable4Prediction(b *testing.B) {
	cfg := core.DefaultConfig(benchScale)
	perModel(b, func(b *testing.B, a *core.Artifacts) {
		var row core.Table4Row
		for i := 0; i < b.N; i++ {
			row = cfg.Table4(a)
		}
		b.ReportMetric(row.SelfPredPct, "self%")
		b.ReportMetric(row.TruePredPct, "true%")
		b.ReportMetric(row.TrueErrorPct, "err%")
	})
}

func BenchmarkTable5SizeOnly(b *testing.B) {
	cfg := core.DefaultConfig(benchScale)
	perModel(b, func(b *testing.B, a *core.Artifacts) {
		var row core.Table5Row
		for i := 0; i < b.N; i++ {
			row = cfg.Table5(a)
		}
		b.ReportMetric(row.PredPct, "sizeonly%")
	})
}

func BenchmarkTable6ChainLength(b *testing.B) {
	cfg := core.DefaultConfig(benchScale)
	perModel(b, func(b *testing.B, a *core.Artifacts) {
		var row core.Table6Row
		for i := 0; i < b.N; i++ {
			row = cfg.Table6(a)
		}
		b.ReportMetric(row.PredPct[0], "len1%")
		b.ReportMetric(row.PredPct[3], "len4%")
		b.ReportMetric(row.PredPct[7], "complete%")
	})
}

func BenchmarkTable7ArenaFractions(b *testing.B) {
	cfg := core.DefaultConfig(benchScale)
	perModel(b, func(b *testing.B, a *core.Artifacts) {
		var row core.Table7Row
		var err error
		for i := 0; i < b.N; i++ {
			row, err = cfg.Table7(a)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(row.ArenaAllocPct, "arena_allocs%")
		b.ReportMetric(row.ArenaBytePct, "arena_bytes%")
	})
}

func BenchmarkTable8HeapSize(b *testing.B) {
	cfg := core.DefaultConfig(benchScale)
	perModel(b, func(b *testing.B, a *core.Artifacts) {
		var row core.Table8Row
		var err error
		for i := 0; i < b.N; i++ {
			row, err = cfg.Table8(a)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(row.FirstFitKB), "firstfitKB")
		b.ReportMetric(row.TrueRatioPct, "arena/ff%")
	})
}

func BenchmarkTable9CPUCost(b *testing.B) {
	cfg := core.DefaultConfig(benchScale)
	perModel(b, func(b *testing.B, a *core.Artifacts) {
		var row core.Table9Row
		var err error
		for i := 0; i < b.N; i++ {
			row, err = cfg.Table9(a)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(row.FirstFit.Total(), "ff_a+f")
		b.ReportMetric(row.Len4.Total(), "len4_a+f")
		b.ReportMetric(row.CCE.Total(), "cce_a+f")
	})
}

func BenchmarkLocalityExtension(b *testing.B) {
	cfg := core.DefaultConfig(benchScale)
	perModel(b, func(b *testing.B, a *core.Artifacts) {
		var row core.LocalityRow
		var err error
		for i := 0; i < b.N; i++ {
			row, err = cfg.Locality(a)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(row.FirstFitMissPct, "ff_miss%")
		b.ReportMetric(row.ArenaMissPct, "arena_miss%")
	})
}

// --- Ablations (design choices called out in DESIGN.md §5) ---

// BenchmarkAblationThreshold sweeps the "how short is short-lived?"
// parameter (paper §4.1 fixes 32KB after discussing the trade-off).
func BenchmarkAblationThreshold(b *testing.B) {
	for _, kb := range []int64{8, 16, 32, 64, 128} {
		kb := kb
		b.Run(fmt.Sprintf("ghost/%dKB", kb), func(b *testing.B) {
			a := artifacts(b, "ghost")
			cfg := profile.DefaultConfig()
			cfg.ShortThreshold = kb << 10
			var ev profile.Eval
			for i := 0; i < b.N; i++ {
				db := profile.TrainObjects(a.TrainTrace.Table, a.TrainObjs, cfg)
				ev = profile.EvaluateObjects(a.TrainTrace.Table, a.TrainObjs, db.Predictor())
			}
			b.ReportMetric(ev.PredictedShortPct(), "pred%")
		})
	}
}

// BenchmarkAblationAdmitFraction relaxes the all-short admission rule
// (paper §4.1: "how large should this percentage be?").
func BenchmarkAblationAdmitFraction(b *testing.B) {
	for _, frac := range []float64{1.0, 0.99, 0.95, 0.9} {
		frac := frac
		b.Run(fmt.Sprintf("espresso/admit=%.2f", frac), func(b *testing.B) {
			a := artifacts(b, "espresso")
			cfg := profile.DefaultConfig()
			cfg.AdmitFraction = frac
			var self, tru profile.Eval
			for i := 0; i < b.N; i++ {
				db := profile.TrainObjects(a.TrainTrace.Table, a.TrainObjs, cfg)
				p := db.Predictor()
				self = profile.EvaluateObjects(a.TrainTrace.Table, a.TrainObjs, p)
				tru = profile.EvaluateObjects(a.TestTrace.Table, a.TestObjs, p)
			}
			b.ReportMetric(self.PredictedShortPct(), "self%")
			b.ReportMetric(tru.ErrorPct(), "true_err%")
		})
	}
}

// BenchmarkAblationArenaGeometry sweeps arena count x size at a fixed
// 64KB total (the paper motivates 16x4KB blocking against pollution).
func BenchmarkAblationArenaGeometry(b *testing.B) {
	for _, g := range []struct{ n, sizeKB int }{
		{1, 64}, {4, 16}, {16, 4}, {64, 1},
	} {
		g := g
		b.Run(fmt.Sprintf("cfrac/%dx%dKB", g.n, g.sizeKB), func(b *testing.B) {
			a := artifacts(b, "cfrac")
			var res core.SimResult
			var err error
			for i := 0; i < b.N; i++ {
				ar := &heapsim.Arena{NumArenas: g.n, ArenaSize: int64(g.sizeKB) << 10}
				res, err = core.RunSim(a.TestTrace, ar, a.TrainPredictor)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.ArenaAllocPct, "arena_allocs%")
			b.ReportMetric(float64(res.PinnedArenas), "pinned")
		})
	}
}

// BenchmarkAblationRoverPolicy compares the A4' roving pointer against the
// K&R rover-on-free variant (see EXPERIMENTS.md for the trade-off).
func BenchmarkAblationRoverPolicy(b *testing.B) {
	for _, kr := range []bool{false, true} {
		kr := kr
		name := "ghost/a4prime"
		if kr {
			name = "ghost/rover-on-free"
		}
		b.Run(name, func(b *testing.B) {
			a := artifacts(b, "ghost")
			var res core.SimResult
			var err error
			for i := 0; i < b.N; i++ {
				ff := heapsim.NewFirstFit()
				ff.RoverOnFree = kr
				res, err = core.RunSim(a.TestTrace, ff, nil)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.MaxHeap)/1024, "heapKB")
			b.ReportMetric(float64(res.Counts.FFProbes)/float64(res.Counts.FFAllocs), "probes/alloc")
		})
	}
}

// BenchmarkRunSim measures the replay loop itself with no collector
// attached — the baseline the observability layer must not regress (the
// nil path is one predictable branch per event).
func BenchmarkRunSim(b *testing.B) {
	a := artifacts(b, "gawk")
	b.Run("gawk/arena", func(b *testing.B) {
		var res core.SimResult
		var err error
		for i := 0; i < b.N; i++ {
			res, err = core.RunSim(a.TestTrace, heapsim.NewArena(), a.TrainPredictor)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(res.TotalBytes)
		b.ReportMetric(float64(b.N)*float64(len(a.TestTrace.Events))/b.Elapsed().Seconds()/1e6, "Mevents/s")
	})
	b.Run("gawk/firstfit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.RunSim(a.TestTrace, heapsim.NewFirstFit(), nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRunSimObserved is the same replay with a collector attached,
// for eyeballing the instrumentation overhead against BenchmarkRunSim.
func BenchmarkRunSimObserved(b *testing.B) {
	a := artifacts(b, "gawk")
	for i := 0; i < b.N; i++ {
		col := lifetime.NewObsCollector(lifetime.ObsOptions{Label: "gawk/arena"})
		if _, err := core.RunSim(a.TestTrace, heapsim.NewArena(), a.TrainPredictor, col); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunSimStreaming measures the block-path replay engine:
// core.RunSimSource fed by a pre-transposed columnar view of the test
// trace, the cheapest producer the batched Source API admits (NextBlock
// repoints the block at the next column window; nothing is copied or
// decoded per event). Generation and training happen once, outside the
// timed region, so ns/op prices the replay alone — divide by the
// reported events/op for ns/event, which is what CI gates.
//
// With -benchmem the other gated column is allocs/op: the replay's
// allocation count is bounded by the live-object set (block free lists,
// the allocators' page and slab pools), not the event count, so it
// stays essentially flat across the 10x event spread between the 1x and
// 10x sub-benchmarks.
func BenchmarkRunSimStreaming(b *testing.B) {
	m := synth.ByName("gawk")
	// Train once, outside the measured loop.
	trainSrc, err := m.Source(synth.Config{Input: synth.Train, Seed: 1, Scale: 0.002})
	if err != nil {
		b.Fatal(err)
	}
	db, err := profile.TrainSource(trainSrc, profile.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	pred := db.Predictor()
	for _, sc := range []struct {
		name  string
		scale float64
	}{{"1x", 0.002}, {"10x", 0.02}} {
		cfg := synth.Config{Input: synth.Test, Seed: 1, Scale: sc.scale}
		for _, alloc := range []string{"arena", "firstfit"} {
			alloc := alloc
			b.Run("gawk/"+alloc+"/"+sc.name, func(b *testing.B) {
				src, err := m.Source(cfg)
				if err != nil {
					b.Fatal(err)
				}
				tr, err := trace.CollectBlocks(src)
				if err != nil {
					b.Fatal(err)
				}
				cols := trace.NewTraceColumns(tr)
				nEvents := len(tr.Events)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					cols.Reset()
					var a heapsim.Allocator
					var p *profile.Predictor
					if alloc == "arena" {
						a, p = heapsim.NewArena(), pred
					} else {
						a = heapsim.NewFirstFit()
					}
					if _, err := core.RunSimSource(cols, a, p); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(nEvents), "events/op")
				b.ReportMetric(float64(b.N)*float64(nEvents)/b.Elapsed().Seconds()/1e6, "Mevents/s")
			})
		}
	}
}

// BenchmarkGenerate measures raw trace-generation throughput.
func BenchmarkGenerate(b *testing.B) {
	m := lifetime.ModelByName("cfrac")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr, err := lifetime.GenerateTrace(m, lifetime.TrainInput, uint64(i), 0.01)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(tr.Events)))
	}
}

// BenchmarkPredictorLookup measures the per-allocation prediction cost of
// the mapped predictor (the operation the paper prices at 18 instructions).
func BenchmarkPredictorLookup(b *testing.B) {
	a := artifacts(b, "gawk")
	m := a.TrainPredictor.NewMapper(a.TestTrace.Table)
	events := a.TestTrace.Events
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := events[i%len(events)]
		if ev.Kind == 1 {
			m.PredictShort(ev.Chain, ev.Size)
		}
	}
}

// BenchmarkExtensionGCPretenuring quantifies the paper's related-work
// claim: a generational collector with lifetime-prediction pretenuring
// copies less than the plain collector.
func BenchmarkExtensionGCPretenuring(b *testing.B) {
	for _, pre := range []bool{false, true} {
		pre := pre
		name := "gawk/baseline"
		if pre {
			name = "gawk/pretenured"
		}
		b.Run(name, func(b *testing.B) {
			a := artifacts(b, "gawk")
			var pred *profile.Predictor
			if pre {
				pred = a.TrainPredictor
			}
			var st lifetime.GCStats
			var err error
			for i := 0; i < b.N; i++ {
				st, err = lifetime.SimulateGC(a.TestTrace, lifetime.DefaultGCConfig(), pred)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(st.CopiedBytes())/1024, "copiedKB")
			b.ReportMetric(float64(st.MinorGCs), "minorGCs")
		})
	}
}

// BenchmarkEngineRun measures the DAG scheduler end to end over the
// cheap analysis tables (artifacts come pre-built from the shared
// engine, so the measured work is cell execution plus scheduling). The
// overlap metric is CPUTime/Wall — the achieved parallelism; on a
// multi-core machine it should approach the worker count.
func BenchmarkEngineRun(b *testing.B) {
	e := benchEngine()
	// Warm the artifact cache outside the timed region.
	for _, name := range core.ProgramOrder {
		artifacts(b, name)
	}
	tables := map[string]bool{"3": true, "4": true, "5": true, "6": true}
	for _, workers := range []int{1, 4} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var res *core.RunResult
			var err error
			for i := 0; i < b.N; i++ {
				res, err = e.Run(core.Spec{Tables: tables, Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.CPUTime().Seconds()/res.Wall.Seconds(), "overlap")
		})
	}
}

// BenchmarkExtensionCustomAlloc contrasts the CUSTOMALLOC-style
// profile-synthesized per-size allocator with the lifetime-predicting
// arena allocator (see core.CustomAllocComparison's doc for the finding).
func BenchmarkExtensionCustomAlloc(b *testing.B) {
	cfg := core.DefaultConfig(benchScale)
	perModel(b, func(b *testing.B, a *core.Artifacts) {
		var row core.CustomRow
		var err error
		for i := 0; i < b.N; i++ {
			row, err = cfg.CustomAllocComparison(a)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(row.CustomFastPct, "fastpath%")
		b.ReportMetric(float64(row.CustomHeapKB), "customKB")
		b.ReportMetric(float64(row.ArenaHeapKB), "arenaKB")
	})
}
