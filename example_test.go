package lifetime_test

import (
	"fmt"

	lifetime "repro"
)

// ExampleTrain demonstrates the core train/evaluate loop on the GAWK
// workload model: the paper's true prediction, where the predictor trained
// on one input is applied to another.
func ExampleTrain() {
	m := lifetime.ModelByName("gawk")
	train, _ := lifetime.GenerateTrace(m, lifetime.TrainInput, 1, 0.01)
	test, _ := lifetime.GenerateTrace(m, lifetime.TestInput, 2, 0.01)

	pred, _ := lifetime.Train(train, lifetime.DefaultProfileConfig())
	ev, _ := lifetime.Evaluate(test, pred)
	fmt.Printf("actual short-lived:    %.0f%%\n", ev.ActualShortPct())
	fmt.Printf("predicted short-lived: %.0f%%\n", ev.PredictedShortPct())
	fmt.Printf("prediction error:      %.0f%%\n", ev.ErrorPct())
	// Output:
	// actual short-lived:    100%
	// predicted short-lived: 100%
	// prediction error:      0%
}

// ExampleSimulate runs the lifetime-predicting arena allocator against a
// trace and reports how much traffic the arenas absorbed.
func ExampleSimulate() {
	m := lifetime.ModelByName("gawk")
	tr, _ := lifetime.GenerateTrace(m, lifetime.TrainInput, 1, 0.01)
	pred, _ := lifetime.Train(tr, lifetime.DefaultProfileConfig())

	res, _ := lifetime.Simulate(tr, lifetime.NewArenaAllocator(), pred)
	fmt.Printf("arena allocations: %.0f%%\n", res.ArenaAllocPct)
	fmt.Printf("fallbacks: %d\n", res.Counts.ArenaFallbacks)
	// Output:
	// arena allocations: 100%
	// fallbacks: 0
}

// ExampleRecorder instruments a toy program by hand: the recorder
// maintains the dynamic call-chain and emits the same trace format the
// workload models generate.
func ExampleRecorder() {
	rec := lifetime.NewRecorder("toy", "train")
	main := rec.Enter("main")
	for i := 0; i < 3; i++ {
		loop := rec.Enter("loop")
		id := rec.Malloc(16)
		rec.Free(id)
		rec.Exit(loop)
	}
	rec.Exit(main)

	tr := rec.Trace()
	objs, _ := lifetime.Annotate(tr)
	fmt.Printf("objects: %d\n", len(objs))
	fmt.Printf("chain:   %s\n", tr.Table.String(objs[0].Chain))
	fmt.Printf("life:    %d bytes\n", objs[0].Lifetime)
	// Output:
	// objects: 3
	// chain:   main>loop
	// life:    16 bytes
}

// ExampleLifetimeQuantiles computes a trace's byte-weighted lifetime
// quartiles — the paper's Table 3 measurement.
func ExampleLifetimeQuantiles() {
	rec := lifetime.NewRecorder("toy", "train")
	frame := rec.Enter("main")
	short := rec.Malloc(100)
	rec.Free(short)         // lifetime 100 (its own size)
	long := rec.Malloc(100) // lives through the padding below
	pad := rec.Malloc(800)
	rec.Free(pad)
	rec.Free(long) // lifetime 900
	rec.Exit(frame)

	objs, _ := lifetime.Annotate(rec.Trace())
	qs := lifetime.LifetimeQuantiles(objs, []float64{0.5, 1}, true)
	fmt.Printf("median %.0f, max %.0f\n", qs[0], qs[1])
	// Output:
	// median 800, max 900
}
