// A toy expression compiler instrumented with the lifetime recorder — the
// "optimizers and translators" workload from the paper's opening sentence.
//
// The compiler lexes and parses arithmetic expressions into AST nodes,
// constant-folds and value-numbers them (classic CSE), and emits stack
// code. Its allocation behaviour is textbook lifetime-prediction material:
//
//   - AST nodes, token strings, and folding temporaries die at the end of
//     each statement (short-lived, predictable by site);
//   - the symbol table and the emitted code buffer live to the end
//     (long-lived);
//   - the value-numbering table is per-function (medium-lived).
//
// The demo compiles a training translation unit, trains a predictor, and
// checks transfer onto a different unit, then sizes the heaps both ways.
//
//	go run ./examples/compiler
package main

import (
	"fmt"
	"log"
	"strings"

	lifetime "repro"
)

// ---- Compiler data structures (all heap cells go through the recorder) ----

type nodeKind uint8

const (
	nodeNum nodeKind = iota + 1
	nodeVar
	nodeBinop
)

type node struct {
	id    lifetime.ObjectID
	kind  nodeKind
	op    byte
	num   int64
	name  string
	l, r  *node
	value int // value number assigned by CSE
}

type compiler struct {
	rec *lifetime.Recorder

	symtab map[string]*symbol // long-lived
	code   []*instr           // long-lived
}

type symbol struct {
	id   lifetime.ObjectID
	name string
	slot int
}

type instr struct {
	id   lifetime.ObjectID
	text string
}

func newCompiler(input string) *compiler {
	return &compiler{
		rec:    lifetime.NewRecorder("exprc", input),
		symtab: make(map[string]*symbol),
	}
}

// ---- Allocation entry points, one function per node class ----

func (c *compiler) allocNode(k nodeKind) *node {
	defer c.rec.Exit(c.rec.Enter("allocNode"))
	return &node{id: c.rec.MallocTagged(48, 96), kind: k}
}

func (c *compiler) freeNode(n *node) {
	if n == nil {
		return
	}
	c.freeNode(n.l)
	c.freeNode(n.r)
	if err := c.rec.Free(n.id); err != nil {
		log.Fatalf("compiler node double free: %v", err)
	}
}

func (c *compiler) intern(name string) *symbol {
	defer c.rec.Exit(c.rec.Enter("intern"))
	if s, ok := c.symtab[name]; ok {
		return s
	}
	s := &symbol{
		id:   c.rec.MallocTagged(32+int64(len(name)), 400),
		name: name,
		slot: len(c.symtab),
	}
	c.symtab[name] = s
	return s
}

func (c *compiler) emit(text string) {
	defer c.rec.Exit(c.rec.Enter("emit"))
	c.code = append(c.code, &instr{
		id:   c.rec.MallocTagged(16+int64(len(text)), 40),
		text: text,
	})
}

// ---- Front end ----

type token struct {
	id   lifetime.ObjectID
	text string
}

// lex splits a statement into tokens; token cells are freed by the parser
// as it consumes them (very short-lived).
func (c *compiler) lex(src string) []*token {
	defer c.rec.Exit(c.rec.Enter("lex"))
	var toks []*token
	i := 0
	for i < len(src) {
		ch := src[i]
		switch {
		case ch == ' ':
			i++
			continue
		case ch >= '0' && ch <= '9':
			j := i
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			toks = append(toks, c.newToken(src[i:j]))
			i = j
		case ch >= 'a' && ch <= 'z':
			j := i
			for j < len(src) && src[j] >= 'a' && src[j] <= 'z' {
				j++
			}
			toks = append(toks, c.newToken(src[i:j]))
			i = j
		default:
			toks = append(toks, c.newToken(src[i:i+1]))
			i++
		}
	}
	return toks
}

func (c *compiler) newToken(text string) *token {
	defer c.rec.Exit(c.rec.Enter("newToken"))
	return &token{id: c.rec.MallocTagged(16+int64(len(text)), 20), text: text}
}

// parser is a tiny recursive-descent parser over the token slice.
type parser struct {
	c    *compiler
	toks []*token
	pos  int
}

func (p *parser) peek() string {
	if p.pos >= len(p.toks) {
		return ""
	}
	return p.toks[p.pos].text
}

func (p *parser) next() string {
	t := p.toks[p.pos]
	p.pos++
	text := t.text
	if err := p.c.rec.Free(t.id); err != nil {
		log.Fatalf("token double free: %v", err)
	}
	return text
}

// expr := term (('+'|'-') term)*
func (p *parser) expr() *node {
	defer p.c.rec.Exit(p.c.rec.Enter("parseExpr"))
	n := p.term()
	for p.peek() == "+" || p.peek() == "-" {
		op := p.next()[0]
		bin := p.c.allocNode(nodeBinop)
		bin.op = op
		bin.l = n
		bin.r = p.term()
		n = bin
	}
	return n
}

// term := factor (('*'|'/') factor)*
func (p *parser) term() *node {
	defer p.c.rec.Exit(p.c.rec.Enter("parseTerm"))
	n := p.factor()
	for p.peek() == "*" || p.peek() == "/" {
		op := p.next()[0]
		bin := p.c.allocNode(nodeBinop)
		bin.op = op
		bin.l = n
		bin.r = p.factor()
		n = bin
	}
	return n
}

// factor := number | ident | '(' expr ')'
func (p *parser) factor() *node {
	defer p.c.rec.Exit(p.c.rec.Enter("parseFactor"))
	t := p.next()
	if t == "(" {
		n := p.expr()
		p.next() // ')'
		return n
	}
	if t[0] >= '0' && t[0] <= '9' {
		n := p.c.allocNode(nodeNum)
		fmt.Sscanf(t, "%d", &n.num)
		return n
	}
	n := p.c.allocNode(nodeVar)
	n.name = t
	p.c.intern(t)
	return n
}

// ---- Middle end ----

// fold performs constant folding, allocating replacement nodes and freeing
// the originals (optimizer churn).
func (c *compiler) fold(n *node) *node {
	defer c.rec.Exit(c.rec.Enter("fold"))
	if n.kind != nodeBinop {
		return n
	}
	n.l = c.fold(n.l)
	n.r = c.fold(n.r)
	if n.l.kind == nodeNum && n.r.kind == nodeNum {
		v := c.allocNode(nodeNum)
		switch n.op {
		case '+':
			v.num = n.l.num + n.r.num
		case '-':
			v.num = n.l.num - n.r.num
		case '*':
			v.num = n.l.num * n.r.num
		case '/':
			if n.r.num != 0 {
				v.num = n.l.num / n.r.num
			}
		}
		l, r := n.l, n.r
		n.l, n.r = nil, nil
		c.freeNode(l)
		c.freeNode(r)
		c.freeNode(n)
		return v
	}
	return n
}

// vnEntry is a value-numbering table entry (per-statement lifetime).
type vnEntry struct {
	id  lifetime.ObjectID
	key string
	num int
}

// cse assigns value numbers bottom-up; table entries are medium-lived
// (they die at statement end, after the whole expression is numbered).
func (c *compiler) cse(n *node, table map[string]*vnEntry) string {
	defer c.rec.Exit(c.rec.Enter("cse"))
	var key string
	switch n.kind {
	case nodeNum:
		key = fmt.Sprintf("#%d", n.num)
	case nodeVar:
		key = n.name
	case nodeBinop:
		lk := c.cse(n.l, table)
		rk := c.cse(n.r, table)
		key = fmt.Sprintf("(%s%c%s)", lk, n.op, rk)
	}
	e, ok := table[key]
	if !ok {
		e = &vnEntry{
			id:  c.rec.MallocTagged(24+int64(len(key)), 60),
			key: key,
			num: len(table),
		}
		table[key] = e
	}
	n.value = e.num
	return key
}

// ---- Back end ----

func (c *compiler) gen(n *node) {
	defer c.rec.Exit(c.rec.Enter("gen"))
	switch n.kind {
	case nodeNum:
		c.emit(fmt.Sprintf("push %d", n.num))
	case nodeVar:
		c.emit(fmt.Sprintf("load %d", c.symtab[n.name].slot))
	case nodeBinop:
		c.gen(n.l)
		c.gen(n.r)
		c.emit(fmt.Sprintf("op %c vn%d", n.op, n.value))
	}
}

// compileStmt runs the full pipeline on one statement.
func (c *compiler) compileStmt(src string) {
	defer c.rec.Exit(c.rec.Enter("compileStmt"))
	toks := c.lex(src)
	p := &parser{c: c, toks: toks}
	ast := p.expr()
	ast = c.fold(ast)
	table := make(map[string]*vnEntry)
	c.cse(ast, table)
	c.gen(ast)
	c.freeNode(ast)
	for _, e := range table {
		if err := c.rec.Free(e.id); err != nil {
			log.Fatalf("vn entry double free: %v", err)
		}
	}
}

// shutdown frees long-lived state and returns the trace.
func (c *compiler) shutdown() *lifetime.Trace {
	for name, s := range c.symtab {
		if err := c.rec.Free(s.id); err != nil {
			log.Fatal(err)
		}
		delete(c.symtab, name)
	}
	for _, ins := range c.code {
		if err := c.rec.Free(ins.id); err != nil {
			log.Fatal(err)
		}
	}
	c.code = nil
	return c.rec.Trace()
}

// ---- Inputs: two synthetic translation units ----

func statements(seed uint64, n int, vars []string) []string {
	out := make([]string, n)
	x := seed
	rnd := func(m int) int {
		x = x*6364136223846793005 + 1442695040888963407
		return int((x >> 33) % uint64(m))
	}
	var gen func(depth int) string
	gen = func(depth int) string {
		if depth <= 0 || rnd(3) == 0 {
			if rnd(2) == 0 {
				return fmt.Sprintf("%d", rnd(100))
			}
			return vars[rnd(len(vars))]
		}
		ops := "+-*/"
		return fmt.Sprintf("(%s %c %s)", gen(depth-1), ops[rnd(4)], gen(depth-1))
	}
	for i := range out {
		out[i] = gen(4)
	}
	return out
}

func run(input string, stmts []string) *lifetime.Trace {
	c := newCompiler(input)
	main := c.rec.Enter("main")
	unit := c.rec.Enter("compileUnit")
	for _, s := range stmts {
		c.compileStmt(s)
	}
	c.rec.Exit(unit)
	c.rec.Exit(main)
	return c.shutdown()
}

func main() {
	trainTrace := run("train", statements(7, 2500, []string{"a", "b", "c", "d"}))
	testTrace := run("test", statements(1234, 2000, strings.Fields("x y z w v u")))

	for _, tr := range []*lifetime.Trace{trainTrace, testTrace} {
		st, err := lifetime.ComputeStats(tr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s/%s: %d objects, %d bytes, max live %d bytes\n",
			tr.Program, tr.Input, st.TotalObjects, st.TotalBytes, st.MaxBytes)
	}

	pred, err := lifetime.Train(trainTrace, lifetime.DefaultProfileConfig())
	if err != nil {
		log.Fatal(err)
	}
	self, err := lifetime.Evaluate(trainTrace, pred)
	if err != nil {
		log.Fatal(err)
	}
	tru, err := lifetime.Evaluate(testTrace, pred)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npredictor: %d sites (complete chains)\n", pred.NumSites())
	fmt.Printf("self prediction: %5.1f%%   true prediction: %5.1f%% (error %.2f%%)\n",
		self.PredictedShortPct(), tru.PredictedShortPct(), tru.ErrorPct())
	fmt.Println("the compiler pipeline is input-independent, so complete chains transfer")
	fmt.Println("across translation units — the paper's GAWK case, unlike the interpreter demo.")

	ff, err := lifetime.Simulate(testTrace, lifetime.NewFirstFitAllocator(), nil)
	if err != nil {
		log.Fatal(err)
	}
	ar, err := lifetime.Simulate(testTrace, lifetime.NewArenaAllocator(), pred)
	if err != nil {
		log.Fatal(err)
	}
	params := lifetime.DefaultCostParams()
	fmt.Printf("\nfirst-fit:  heap %4d KB, %5.1f instr per alloc+free\n",
		ff.MaxHeap>>10, lifetime.CostFirstFit(ff.Counts, params).Total())
	fmt.Printf("arena:      heap %4d KB, %5.1f instr per alloc+free, %.1f%% of allocs in arenas\n",
		ar.MaxHeap>>10, lifetime.CostArenaLen4(ar.Counts, params).Total(), ar.ArenaAllocPct)
}
