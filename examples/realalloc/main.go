// The prototype the paper's conclusion promises, working for real: a
// request-processing loop whose scratch buffers come from the
// lifetime-predicting bump allocator (internal/bumparena via the facade),
// with call sites identified by runtime.Callers — the length-4 call-chain,
// captured natively in Go.
//
// The demo trains on one batch of requests, then processes another batch
// in predicting mode and reports how much of the allocation traffic the
// bump path absorbed, alongside a wall-clock comparison against plain
// make().
//
//	go run ./examples/realalloc
package main

import (
	"fmt"
	"time"

	lifetime "repro"
)

// processor is a toy request pipeline: parse a header into a scratch
// buffer, build a response body in another, and occasionally cache an
// entry that outlives the request (the long-lived site the predictor must
// exclude).
type processor struct {
	a     *lifetime.BumpAllocator
	cache [][]byte
	out   int
}

//go:noinline
func (p *processor) parseHeader(req []byte) []byte {
	buf := p.a.Alloc(len(req))
	copy(buf, req)
	// Uppercase the method in place, pretending to parse.
	for i := 0; i < len(buf) && buf[i] != ' '; i++ {
		if buf[i] >= 'a' && buf[i] <= 'z' {
			buf[i] -= 'a' - 'A'
		}
	}
	return buf
}

//go:noinline
func (p *processor) buildResponse(hdr []byte) []byte {
	buf := p.a.Alloc(96)
	n := copy(buf, "HTTP/1.0 200 OK\r\nX-Echo: ")
	n += copy(buf[n:], hdr[:min(len(hdr), 40)])
	p.out += n
	return buf
}

//go:noinline
func (p *processor) cacheEntry(hdr []byte) {
	entry := p.a.Alloc(len(hdr))
	copy(entry, hdr)
	p.cache = append(p.cache, entry) // lives until shutdown
}

func (p *processor) handle(req []byte, cacheIt bool) error {
	hdr := p.parseHeader(req)
	resp := p.buildResponse(hdr)
	if cacheIt {
		p.cacheEntry(hdr)
	}
	if err := p.a.Free(resp); err != nil {
		return err
	}
	return p.a.Free(hdr)
}

func (p *processor) shutdown() error {
	for _, e := range p.cache {
		if err := p.a.Free(e); err != nil {
			return err
		}
	}
	p.cache = nil
	return nil
}

func requests(n int) [][]byte {
	reqs := make([][]byte, n)
	for i := range reqs {
		reqs[i] = []byte(fmt.Sprintf("get /items/%d http/1.0", i*7919%1000))
	}
	return reqs
}

func runBatch(p *processor, reqs [][]byte) error {
	for i, r := range reqs {
		if err := p.handle(r, i%100 == 0); err != nil {
			return err
		}
	}
	return p.shutdown()
}

func main() {
	cfg := lifetime.DefaultBumpConfig()
	// This demo's call stacks are only four frames deep, so the default
	// length-4 chain would reach main() — whose training and predicting
	// call sites differ, breaking the site mapping (the paper's layering
	// observation run in reverse). Three callers end at runBatch, which
	// both batches share.
	cfg.ChainLength = 3

	// Training batch.
	train := &processor{a: lifetime.NewBumpTraining(cfg)}
	if err := runBatch(train, requests(30000)); err != nil {
		panic(err)
	}
	db := train.a.Finish()
	fmt.Printf("training: %d sites observed, %d predicted short-lived\n",
		db.Sites(), db.PredictedSites())

	// Predicting batch (different request mix, same code paths).
	pred := &processor{a: lifetime.NewBumpPredicting(cfg, db)}
	start := time.Now()
	if err := runBatch(pred, requests(50000)); err != nil {
		panic(err)
	}
	elapsed := time.Since(start)
	st := pred.a.Stats()
	fmt.Printf("predicting: %d allocs, %.1f%% bump-allocated, %d arena resets, %d fallbacks\n",
		st.Allocs, 100*float64(st.BumpAllocs)/float64(st.Allocs),
		st.ArenaResets, st.Fallbacks)
	fmt.Printf("predicting batch took %v\n", elapsed.Round(time.Microsecond))

	// The same batch against plain make() for a rough wall-clock feel
	// (the Go GC absorbs the frees).
	plain := &processor{a: lifetime.NewBumpTraining(cfg)} // training mode = make() path
	start = time.Now()
	if err := runBatch(plain, requests(50000)); err != nil {
		panic(err)
	}
	fmt.Printf("make()-backed batch took %v (plus GC debt)\n",
		time.Since(start).Round(time.Microsecond))
	fmt.Println("\nthe cached-entry site was trained long-lived, so pinning never occurs;")
	fmt.Println("scratch buffers cycle through 64KB of arenas regardless of batch size.")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
