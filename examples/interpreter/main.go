// A miniature Lisp-ish interpreter instrumented with the lifetime
// recorder, demonstrating how a real language runtime uses the library:
//
//  1. every interpreter function brackets itself with Enter/Exit so the
//     recorder maintains the dynamic call-chain (the paper's AE role);
//
//  2. every heap cell the interpreter allocates goes through Malloc, and
//     explicit frees (reference drops at statement boundaries) go through
//     Free — exactly the malloc/free discipline of gawk or perl 4;
//
//  3. a training script profiles the runtime's allocation sites, and a
//     different script checks how well the trained predictor transfers —
//     the paper's true prediction, in the regime where the "input" is a
//     whole different program (PERL's scenario).
//
//     go run ./examples/interpreter
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	lifetime "repro"
)

// ---- Values ----
//
// Every value lives on the interpreter's simulated heap: it owns a
// recorder object id and a byte size, and must be released exactly once.

type kind uint8

const (
	kindInt kind = iota + 1
	kindStr
	kindCons
	kindNil
)

type value struct {
	id   lifetime.ObjectID
	kind kind
	n    int64
	s    string
	car  *value
	cdr  *value
}

// interp is the instrumented interpreter.
type interp struct {
	rec     *lifetime.Recorder
	globals map[string]*value // long-lived: freed only at shutdown
	nilVal  *value
}

func newInterp(program, input string) *interp {
	ip := &interp{
		rec:     lifetime.NewRecorder(program, input),
		globals: make(map[string]*value),
	}
	return ip
}

// alloc creates a heap cell of the given kind at the current call-chain.
func (ip *interp) alloc(k kind, size int64) *value {
	return &value{id: ip.rec.MallocTagged(size, size*2), kind: k}
}

// free releases one cell (not its children).
func (ip *interp) free(v *value) {
	if v == nil || v.kind == kindNil {
		return
	}
	if err := ip.rec.Free(v.id); err != nil {
		log.Fatalf("interpreter double free: %v", err)
	}
}

// freeTree releases a cons tree.
func (ip *interp) freeTree(v *value) {
	if v == nil || v.kind == kindNil {
		return
	}
	if v.kind == kindCons {
		ip.freeTree(v.car)
		ip.freeTree(v.cdr)
	}
	ip.free(v)
}

// newInt, newStr, newCons are the runtime's allocation entry points; each
// is its own function so the call-chain distinguishes what allocated.
func (ip *interp) newInt(n int64) *value {
	defer ip.rec.Exit(ip.rec.Enter("newInt"))
	v := ip.alloc(kindInt, 16)
	v.n = n
	return v
}

func (ip *interp) newStr(s string) *value {
	defer ip.rec.Exit(ip.rec.Enter("newStr"))
	v := ip.alloc(kindStr, 24+int64(len(s)))
	v.s = s
	return v
}

func (ip *interp) newCons(car, cdr *value) *value {
	defer ip.rec.Exit(ip.rec.Enter("newCons"))
	v := ip.alloc(kindCons, 24)
	v.car, v.cdr = car, cdr
	return v
}

func (ip *interp) nilValue() *value {
	if ip.nilVal == nil {
		ip.nilVal = &value{kind: kindNil}
	}
	return ip.nilVal
}

// ---- Builtins ----
//
// Each builtin brackets itself, so its allocations are attributed to a
// site like main>run>evalStmt>evalExpr>builtinSplit>newStr.

// builtinSplit splits a string into a cons list of word strings.
func (ip *interp) builtinSplit(s *value) *value {
	defer ip.rec.Exit(ip.rec.Enter("builtinSplit"))
	out := ip.nilValue()
	words := strings.Fields(s.s)
	for i := len(words) - 1; i >= 0; i-- {
		out = ip.newCons(ip.newStr(words[i]), out)
	}
	return out
}

// builtinJoin concatenates a list of strings with a separator, allocating
// a fresh temporary for every partial concatenation (the churn real
// interpreters exhibit).
func (ip *interp) builtinJoin(list *value, sep string) *value {
	defer ip.rec.Exit(ip.rec.Enter("builtinJoin"))
	acc := ip.newStr("")
	for l := list; l.kind == kindCons; l = l.cdr {
		old := acc
		acc = ip.newStr(old.s + sep + l.car.s)
		ip.free(old)
	}
	return acc
}

// builtinSortNums sorts a list of ints into a fresh list.
func (ip *interp) builtinSortNums(list *value) *value {
	defer ip.rec.Exit(ip.rec.Enter("builtinSortNums"))
	var ns []int64
	for l := list; l.kind == kindCons; l = l.cdr {
		ns = append(ns, l.car.n)
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	out := ip.nilValue()
	for i := len(ns) - 1; i >= 0; i-- {
		out = ip.newCons(ip.newInt(ns[i]), out)
	}
	return out
}

// builtinWrap greedily wraps a word list into lines of at most width
// runes, returning a list of line strings.
func (ip *interp) builtinWrap(words *value, width int) *value {
	defer ip.rec.Exit(ip.rec.Enter("builtinWrap"))
	lines := ip.nilValue()
	cur := ip.newStr("")
	for w := words; w.kind == kindCons; w = w.cdr {
		joined := cur.s
		if joined != "" {
			joined += " "
		}
		joined += w.car.s
		if len(joined) > width && cur.s != "" {
			lines = ip.newCons(cur, lines)
			cur = ip.newStr(w.car.s)
		} else {
			old := cur
			cur = ip.newStr(joined)
			ip.free(old)
		}
	}
	return ip.newCons(cur, lines)
}

// builtinSum folds a list of ints, allocating an accumulator per step
// (how naive interpreters implement arithmetic on boxed values).
func (ip *interp) builtinSum(list *value) *value {
	defer ip.rec.Exit(ip.rec.Enter("builtinSum"))
	acc := ip.newInt(0)
	for l := list; l.kind == kindCons; l = l.cdr {
		old := acc
		acc = ip.newInt(old.n + l.car.n)
		ip.free(old)
	}
	return acc
}

// setGlobal stores a value in the global table (long-lived ownership).
func (ip *interp) setGlobal(name string, v *value) {
	defer ip.rec.Exit(ip.rec.Enter("setGlobal"))
	if old, ok := ip.globals[name]; ok {
		ip.freeTree(old)
	}
	// The binding cell itself is a long-lived allocation.
	cell := ip.newCons(v, ip.nilValue())
	ip.globals[name] = cell
}

func (ip *interp) global(name string) *value {
	c, ok := ip.globals[name]
	if !ok {
		return ip.nilValue()
	}
	return c.car
}

// shutdown frees all global state, then returns the trace.
func (ip *interp) shutdown() *lifetime.Trace {
	for name, cell := range ip.globals {
		ip.freeTree(cell)
		delete(ip.globals, name)
	}
	return ip.rec.Trace()
}

// ---- The two scripts ----
//
// Rather than inventing a surface syntax, the scripts are Go functions
// driving the instrumented runtime — what matters for the experiment is
// the allocation behaviour, which flows entirely through the recorder.

// sortScript models the training workload: repeatedly parse a line of
// numbers, sort them, and keep summary statistics in globals.
func sortScript(ip *interp, lines []string) {
	defer ip.rec.Exit(ip.rec.Enter("sortScript"))
	for _, line := range lines {
		func() {
			defer ip.rec.Exit(ip.rec.Enter("doLine"))
			str := ip.newStr(line)
			words := ip.builtinSplit(str)
			ip.free(str)
			// Convert words to ints.
			nums := ip.nilValue()
			for w := words; w.kind == kindCons; w = w.cdr {
				var n int64
				fmt.Sscanf(w.car.s, "%d", &n)
				nums = ip.newCons(ip.newInt(n), nums)
			}
			ip.freeTree(words)
			sorted := ip.builtinSortNums(nums)
			ip.freeTree(nums)
			total := ip.builtinSum(sorted)
			ip.freeTree(sorted)
			ip.setGlobal("total", total)
		}()
	}
}

// wrapScript models the test workload — a different program: fill words
// into paragraphs, counting lines in a global.
func wrapScript(ip *interp, paragraphs []string) {
	defer ip.rec.Exit(ip.rec.Enter("wrapScript"))
	count := int64(0)
	for _, para := range paragraphs {
		func() {
			defer ip.rec.Exit(ip.rec.Enter("doParagraph"))
			str := ip.newStr(para)
			words := ip.builtinSplit(str)
			ip.free(str)
			lines := ip.builtinWrap(words, 40)
			ip.freeTree(words)
			joined := ip.builtinJoin(lines, "\n")
			ip.freeTree(lines)
			count += int64(len(joined.s))
			ip.free(joined)
		}()
	}
	ip.setGlobal("chars", ip.newInt(count))
}

// ---- Inputs ----

func numberLines(n int) []string {
	lines := make([]string, n)
	x := uint64(12345)
	for i := range lines {
		var b strings.Builder
		for j := 0; j < 12; j++ {
			x = x*6364136223846793005 + 1442695040888963407
			fmt.Fprintf(&b, "%d ", x%1000)
		}
		lines[i] = b.String()
	}
	return lines
}

func paragraphs(n int) []string {
	words := []string{"storage", "allocation", "lifetime", "predictor",
		"arena", "heap", "fragmentation", "locality", "object", "site"}
	out := make([]string, n)
	x := uint64(99)
	for i := range out {
		var b strings.Builder
		for j := 0; j < 60; j++ {
			x = x*2862933555777941757 + 3037000493
			b.WriteString(words[x%uint64(len(words))])
			b.WriteByte(' ')
		}
		out[i] = b.String()
	}
	return out
}

func main() {
	// Training run: the sorting script.
	ipTrain := newInterp("miniscript", "train")
	mainFrame := ipTrain.rec.Enter("main")
	runFrame := ipTrain.rec.Enter("run")
	sortScript(ipTrain, numberLines(800))
	ipTrain.rec.Exit(runFrame)
	ipTrain.rec.Exit(mainFrame)
	trainTrace := ipTrain.shutdown()

	// Test run: a different script on the same runtime.
	ipTest := newInterp("miniscript", "test")
	mainFrame = ipTest.rec.Enter("main")
	runFrame = ipTest.rec.Enter("run")
	wrapScript(ipTest, paragraphs(400))
	ipTest.rec.Exit(runFrame)
	ipTest.rec.Exit(mainFrame)
	testTrace := ipTest.shutdown()

	for _, tr := range []*lifetime.Trace{trainTrace, testTrace} {
		st, err := lifetime.ComputeStats(tr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s/%s: %d objects, %d bytes allocated, max live %d bytes\n",
			tr.Program, tr.Input, st.TotalObjects, st.TotalBytes, st.MaxBytes)
	}

	// Complete call-chains include the script functions themselves, so a
	// predictor trained on one script cannot map onto a different
	// script's chains — the degenerate end of the paper's PERL case.
	cfg := lifetime.DefaultProfileConfig()
	pred, err := lifetime.Train(trainTrace, cfg)
	if err != nil {
		log.Fatal(err)
	}
	self, err := lifetime.Evaluate(trainTrace, pred)
	if err != nil {
		log.Fatal(err)
	}
	tru, err := lifetime.Evaluate(testTrace, pred)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncomplete call-chain predictor (%d sites):\n", pred.NumSites())
	fmt.Printf("  self prediction (sort script):  %5.1f%% of bytes\n", self.PredictedShortPct())
	fmt.Printf("  true prediction (wrap script):  %5.1f%% of bytes\n", tru.PredictedShortPct())

	// Length-2 sub-chains see only the runtime layer (builtinSplit >
	// newStr and friends), which the scripts share, so the predictor
	// transfers — the paper's Table 6 trade-off between chain length and
	// cross-input robustness, seen from the other side.
	cfg2 := cfg
	cfg2.ChainLength = 2
	pred2, err := lifetime.Train(trainTrace, cfg2)
	if err != nil {
		log.Fatal(err)
	}
	self2, err := lifetime.Evaluate(trainTrace, pred2)
	if err != nil {
		log.Fatal(err)
	}
	tru2, err := lifetime.Evaluate(testTrace, pred2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlength-2 sub-chain predictor (%d sites):\n", pred2.NumSites())
	fmt.Printf("  self prediction (sort script):  %5.1f%% of bytes\n", self2.PredictedShortPct())
	fmt.Printf("  true prediction (wrap script):  %5.1f%% of bytes (error %.2f%%)\n",
		tru2.PredictedShortPct(), tru2.ErrorPct())
	fmt.Println("\nshared runtime sites (newStr/newCons under the builtins) transfer across")
	fmt.Println("scripts at short chain lengths; script-specific sites never do.")

	ar, err := lifetime.Simulate(testTrace, lifetime.NewArenaAllocator(), pred2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\narena simulation of the wrap script: %.1f%% of allocations, %.1f%% of bytes in arenas\n",
		ar.ArenaAllocPct, ar.ArenaBytePct)
}
