// Quickstart: train a lifetime predictor on one input of a workload,
// evaluate it on another (the paper's "true prediction"), and compare the
// lifetime-predicting arena allocator against plain first-fit.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	lifetime "repro"
)

func main() {
	// GAWK is the paper's success story: 99% of allocated bytes are
	// predictably short-lived, and the test input is the same awk
	// program run over different data.
	m := lifetime.ModelByName("gawk")

	train, err := lifetime.GenerateTrace(m, lifetime.TrainInput, 1, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	test, err := lifetime.GenerateTrace(m, lifetime.TestInput, 2, 0.05)
	if err != nil {
		log.Fatal(err)
	}

	// Train: every allocation site (call-chain x size) gets a lifetime
	// profile; sites whose objects all died within 32KB of allocation
	// become short-lived predictors.
	pred, err := lifetime.Train(train, lifetime.DefaultProfileConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d short-lived predictor sites\n", pred.NumSites())

	// Evaluate on the other input: sites map across runs by call-chain
	// and rounded size.
	ev, err := lifetime.Evaluate(test, pred)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("actual short-lived bytes:    %5.1f%%\n", ev.ActualShortPct())
	fmt.Printf("predicted short-lived bytes: %5.1f%% (error %.2f%%)\n",
		ev.PredictedShortPct(), ev.ErrorPct())

	// Simulate both allocators on the test input.
	ff, err := lifetime.Simulate(test, lifetime.NewFirstFitAllocator(), nil)
	if err != nil {
		log.Fatal(err)
	}
	ar, err := lifetime.Simulate(test, lifetime.NewArenaAllocator(), pred)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfirst-fit max heap:  %6d KB\n", ff.MaxHeap>>10)
	fmt.Printf("arena max heap:      %6d KB (%.1f%% of allocations bump-allocated)\n",
		ar.MaxHeap>>10, ar.ArenaAllocPct)

	params := lifetime.DefaultCostParams()
	ffCost := lifetime.CostFirstFit(ff.Counts, params)
	arCost := lifetime.CostArenaLen4(ar.Counts, params)
	fmt.Printf("\nmodeled instructions per alloc+free:\n")
	fmt.Printf("  first-fit:    %.0f\n", ffCost.Total())
	fmt.Printf("  arena (len4): %.0f\n", arCost.Total())
}
