// A miniature PostScript-style interpreter — the GHOST workload in
// microcosm. GhostScript is the paper's most interesting program: its
// allocation stream mixes
//
//   - token/operand churn (small, very short-lived, predictable),
//   - large path-rasterization buffers (short-lived but too big for a
//     4KB arena: the Table 7 "arena bytes ≪ arena allocs" anomaly),
//   - fonts and dictionaries that load early and live forever.
//
// This demo interprets two "documents" on an instrumented stack machine,
// trains on one, predicts on the other, and reproduces the GHOST signature:
// a high arena-allocation fraction with a much lower arena-byte fraction.
//
//	go run ./examples/postscript
package main

import (
	"fmt"
	"log"
	"strings"

	lifetime "repro"
)

// psValue is a tagged operand-stack value with a simulated heap cell.
type psValue struct {
	id   lifetime.ObjectID
	num  float64
	name string
	isNm bool
}

// psMachine is the instrumented interpreter.
type psMachine struct {
	rec   *lifetime.Recorder
	stack []*psValue
	dict  map[string]*psValue // long-lived definitions
	fonts [][]lifetime.ObjectID

	pathBuf   []lifetime.ObjectID // current path's segment buffers
	pageCount int
}

func newMachine(input string) *psMachine {
	return &psMachine{
		rec:  lifetime.NewRecorder("minips", input),
		dict: make(map[string]*psValue),
	}
}

// ---- Allocation entry points ----

func (m *psMachine) newNumber(v float64) *psValue {
	defer m.rec.Exit(m.rec.Enter("newNumber"))
	return &psValue{id: m.rec.MallocTagged(16, 24), num: v}
}

func (m *psMachine) newName(s string) *psValue {
	defer m.rec.Exit(m.rec.Enter("newName"))
	return &psValue{id: m.rec.MallocTagged(24+int64(len(s)), 32), name: s, isNm: true}
}

// newPathSegment allocates a 6KB rasterization buffer — short-lived, but
// it will never fit a 4KB arena.
func (m *psMachine) newPathSegment() lifetime.ObjectID {
	defer m.rec.Exit(m.rec.Enter("newPathSegment"))
	return m.rec.MallocTagged(6144, 1100)
}

// loadFont allocates the long-lived glyph records for one font.
func (m *psMachine) loadFont(glyphs int) {
	defer m.rec.Exit(m.rec.Enter("loadFont"))
	ids := make([]lifetime.ObjectID, glyphs)
	for i := range ids {
		ids[i] = m.rec.MallocTagged(48, 200)
	}
	m.fonts = append(m.fonts, ids)
}

func (m *psMachine) freeValue(v *psValue) {
	if err := m.rec.Free(v.id); err != nil {
		log.Fatalf("minips double free: %v", err)
	}
}

// ---- Stack machine ----

func (m *psMachine) push(v *psValue) { m.stack = append(m.stack, v) }

func (m *psMachine) pop() *psValue {
	if len(m.stack) == 0 {
		log.Fatal("minips: stack underflow")
	}
	v := m.stack[len(m.stack)-1]
	m.stack = m.stack[:len(m.stack)-1]
	return v
}

// exec interprets one token.
func (m *psMachine) exec(tok string) {
	defer m.rec.Exit(m.rec.Enter("exec"))
	switch tok {
	case "add", "sub", "mul":
		b := m.pop()
		a := m.pop()
		var r float64
		switch tok {
		case "add":
			r = a.num + b.num
		case "sub":
			r = a.num - b.num
		case "mul":
			r = a.num * b.num
		}
		m.freeValue(a)
		m.freeValue(b)
		m.push(m.newNumber(r))
	case "def":
		val := m.pop()
		key := m.pop() // PostScript order: /name value def
		if !key.isNm {
			log.Fatal("minips: def key must be a name")
		}
		if old, ok := m.dict[key.name]; ok {
			m.freeValue(old)
		}
		m.dict[key.name] = val // val becomes long-lived
		m.freeValue(key)
	case "load":
		key := m.pop()
		def, ok := m.dict[key.name]
		if !ok {
			log.Fatalf("minips: undefined name %q", key.name)
		}
		m.freeValue(key)
		m.push(m.newNumber(def.num))
	case "moveto", "lineto", "curveto":
		// Consume coordinates, extend the current path.
		n := 2
		if tok == "curveto" {
			n = 6
		}
		for i := 0; i < n; i++ {
			m.freeValue(m.pop())
		}
		m.pathBuf = append(m.pathBuf, m.newPathSegment())
	case "fill", "stroke":
		// Rasterize: the path's segment buffers die together.
		defer m.rec.Exit(m.rec.Enter("rasterize"))
		for _, id := range m.pathBuf {
			if err := m.rec.Free(id); err != nil {
				log.Fatalf("minips path free: %v", err)
			}
		}
		m.pathBuf = m.pathBuf[:0]
	case "showpage":
		m.pageCount++
	case "findfont":
		m.loadFont(64)
	case "pop":
		m.freeValue(m.pop())
	default:
		// Literal token: number or /name.
		if strings.HasPrefix(tok, "/") {
			m.push(m.newName(tok[1:]))
			return
		}
		var v float64
		if _, err := fmt.Sscanf(tok, "%g", &v); err != nil {
			log.Fatalf("minips: bad token %q", tok)
		}
		m.push(m.newNumber(v))
	}
}

// run interprets a whole document.
func (m *psMachine) run(doc string) {
	defer m.rec.Exit(m.rec.Enter("run"))
	for _, tok := range strings.Fields(doc) {
		m.exec(tok)
	}
}

// shutdown frees long-lived state and returns the trace.
func (m *psMachine) shutdown() *lifetime.Trace {
	for k, v := range m.dict {
		m.freeValue(v)
		delete(m.dict, k)
	}
	for _, font := range m.fonts {
		for _, id := range font {
			if err := m.rec.Free(id); err != nil {
				log.Fatal(err)
			}
		}
	}
	m.fonts = nil
	return m.rec.Trace()
}

// ---- Documents ----

// document synthesizes a PostScript-ish page stream: font loads up front,
// then pages of arithmetic (token churn) and path drawing.
func document(pages, strokesPerPage int, seed uint64) string {
	var b strings.Builder
	b.WriteString("/scale 2 def findfont findfont ")
	x := seed
	rnd := func(n int) int {
		x = x*6364136223846793005 + 1442695040888963407
		return int((x >> 33) % uint64(n))
	}
	for p := 0; p < pages; p++ {
		for s := 0; s < strokesPerPage; s++ {
			// Compute a coordinate with operand churn.
			fmt.Fprintf(&b, "/x %d %d add %d mul def ", rnd(100), rnd(100), 1+rnd(4))
			fmt.Fprintf(&b, "/x load /x load moveto ")
			for seg := 0; seg < 2+rnd(3); seg++ {
				fmt.Fprintf(&b, "%d %d lineto ", rnd(500), rnd(500))
			}
			b.WriteString("fill ")
		}
		b.WriteString("showpage ")
	}
	return b.String()
}

func main() {
	// Training document: a reference manual. Test: a thesis.
	train := newMachine("train")
	mainF := train.rec.Enter("main")
	train.run(document(12, 40, 7))
	train.rec.Exit(mainF)
	trainTrace := train.shutdown()

	test := newMachine("test")
	mainF = test.rec.Enter("main")
	test.run(document(9, 55, 1234))
	test.rec.Exit(mainF)
	testTrace := test.shutdown()

	for _, tr := range []*lifetime.Trace{trainTrace, testTrace} {
		st, err := lifetime.ComputeStats(tr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s/%s: %d objects, %d bytes, max live %d bytes\n",
			tr.Program, tr.Input, st.TotalObjects, st.TotalBytes, st.MaxBytes)
	}

	// Two predictors: the paper's strict all-short rule, and a relaxed
	// 99.5% admission. The strict rule falls into an authentic trap
	// here: the single immortal "/scale 2" literal shares its site with
	// every other number literal, so the whole hot site is disqualified
	// ("we only consider allocation sites in which ALL of the objects
	// allocated lived less than 32 kilobytes"). The paper asks "how
	// large should this percentage be?" — this is the answer's shape.
	for _, cfg := range []struct {
		name  string
		admit float64
	}{
		{"all-short rule (paper)", 1.0},
		{"99.5% admission", 0.995},
	} {
		pc := lifetime.DefaultProfileConfig()
		pc.AdmitFraction = cfg.admit
		pred, err := lifetime.Train(trainTrace, pc)
		if err != nil {
			log.Fatal(err)
		}
		ev, err := lifetime.Evaluate(testTrace, pred)
		if err != nil {
			log.Fatal(err)
		}
		res, err := lifetime.Simulate(testTrace, lifetime.NewArenaAllocator(), pred)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s:\n", cfg.name)
		fmt.Printf("  predicted bytes:   %5.1f%% (error %.2f%%)\n",
			ev.PredictedShortPct(), ev.ErrorPct())
		fmt.Printf("  arena allocations: %5.1f%%\n", res.ArenaAllocPct)
		fmt.Printf("  arena bytes:       %5.1f%%\n", res.ArenaBytePct)
	}
	fmt.Println("\ntwo GHOST lessons in one trace: the 6KB path buffers are predicted")
	fmt.Println("short-lived but cannot fit a 4KB arena (arena bytes << arena allocs,")
	fmt.Println("the paper's Table 7), and under the strict rule one immortal literal")
	fmt.Println("(/scale) disqualifies the entire hot number site until admission is")
	fmt.Println("relaxed a notch.")
}
